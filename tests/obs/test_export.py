"""Tests for the trace exporters (repro.obs.export)."""

from __future__ import annotations

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    spans_to_chrome_events,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)


def _nested_spans():
    tracer = Tracer()
    with tracer.span("campaign", "campaign"):
        with tracer.span("unit", "engine", tier="serial"):
            with tracer.span("solve", "solve", strategy="herad"):
                pass
            with tracer.span("solve", "solve", strategy="fertac"):
                pass
    return tracer.collect()


class TestChromeEvents:
    def test_matched_be_pairs(self):
        events = spans_to_chrome_events(_nested_spans())
        assert len(events) == 8  # 4 spans x B+E
        assert sum(1 for e in events if e["ph"] == "B") == 4
        assert sum(1 for e in events if e["ph"] == "E") == 4

    def test_ts_is_relative_and_nonnegative(self):
        events = spans_to_chrome_events(_nested_spans())
        assert min(e["ts"] for e in events) == 0.0
        assert all(e["ts"] >= 0 for e in events)

    def test_args_carry_depth_and_parent(self):
        events = spans_to_chrome_events(_nested_spans())
        solve_b = [e for e in events if e["name"] == "solve" and e["ph"] == "B"]
        assert all(e["args"]["depth"] == 2 for e in solve_b)
        assert all("parent" in e["args"] for e in solve_b)
        campaign_b = next(e for e in events if e["name"] == "campaign" and e["ph"] == "B")
        assert "parent" not in campaign_b["args"]

    def test_empty_spans_export_empty(self):
        assert spans_to_chrome_events([]) == []
        assert to_chrome_trace([])["traceEvents"] == []


class TestValidation:
    def test_real_trace_is_valid(self):
        document = to_chrome_trace(_nested_spans())
        assert validate_chrome_trace(document) == []

    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) == ["document is not a JSON object"]
        assert validate_chrome_trace({"nope": 1}) == [
            "traceEvents is missing or not a list"
        ]

    def test_rejects_missing_fields(self):
        problems = validate_chrome_trace({"traceEvents": [{"ph": "B", "ts": 0}]})
        assert any("missing fields" in p for p in problems)

    def test_rejects_unknown_phase(self):
        event = {"name": "x", "ph": "Q", "ts": 0, "pid": 1, "tid": 1}
        problems = validate_chrome_trace({"traceEvents": [event]})
        assert any("unknown phase" in p for p in problems)

    def test_rejects_ts_regression_within_a_track(self):
        events = [
            {"name": "a", "ph": "B", "ts": 10, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 5, "pid": 1, "tid": 1},
        ]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("ts 5" in p for p in problems)

    def test_rejects_dangling_open(self):
        events = [{"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1}]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("unterminated" in p for p in problems)

    def test_rejects_mismatched_close(self):
        events = [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 1, "pid": 1, "tid": 1},
        ]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("does not match" in p for p in problems)

    def test_rejects_close_with_empty_stack(self):
        events = [{"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 1}]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("empty stack" in p for p in problems)


class TestFileExporters:
    def test_write_chrome_trace_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.add("memo.hits", 3.0)
        path = write_chrome_trace(
            tmp_path / "trace.json", _nested_spans(), registry.snapshot()
        )
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["counters"] == {"memo.hits": 3.0}

    def test_write_events_jsonl(self, tmp_path):
        registry = MetricsRegistry()
        registry.add("n", 2.0)
        registry.set_gauge("g", 1.0)
        registry.observe("h", 0.5)
        path = write_events_jsonl(
            tmp_path / "events.jsonl", _nested_spans(), registry.snapshot()
        )
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["type"] == "header"
        kinds = [record["type"] for record in records]
        assert kinds.count("span") == 4
        assert "counter" in kinds and "gauge" in kinds and "histogram" in kinds
        histogram = next(r for r in records if r["type"] == "histogram")
        assert histogram["count"] == 1 and histogram["mean"] == 0.5
