"""Tests for the quantile sketches (repro.obs.sketch).

The load-bearing property is pinned by hypothesis: however an observation
stream is partitioned across "workers", merging the partial sketches yields
the *bitwise-identical* snapshot of sketching the whole stream — and
therefore identical quantiles.  Everything else (bucket math, accuracy,
registry integration) is conventional example-based coverage.
"""

from __future__ import annotations

import math
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, SketchSnapshot, sketch_of
from repro.obs.sketch import (
    DEFAULT_ALPHA,
    SketchBuilder,
    bucket_index,
    bucket_value,
)


class TestBucketing:
    def test_bucket_is_deterministic_and_monotone(self):
        values = [1e-9, 1e-3, 0.5, 1.0, 1.5, 2.0, 10.0, 1e6]
        indexes = [bucket_index(v) for v in values]
        assert indexes == sorted(indexes)
        assert [bucket_index(v) for v in values] == indexes  # pure function

    def test_bucket_value_has_bounded_relative_error(self):
        for value in (1e-6, 0.003, 1.0, 17.5, 42_000.0):
            representative = bucket_value(bucket_index(value))
            assert abs(representative - value) / value <= DEFAULT_ALPHA + 1e-12

    def test_zero_and_negative_go_to_the_zero_bucket(self):
        sketch = sketch_of([0.0, -1.5, 2.0])
        assert sketch.zero_count == 2
        assert sketch.count == 3
        assert sketch.minimum == -1.5
        assert sketch.maximum == 2.0


class TestQuantiles:
    def test_empty_sketch_answers_zero(self):
        empty = SketchSnapshot()
        assert empty.empty
        assert empty.quantile(0.5) == 0.0

    def test_quantiles_are_within_alpha_of_exact(self):
        values = [0.1 * (i + 1) for i in range(1000)]
        sketch = sketch_of(values)
        for q in (0.01, 0.5, 0.9, 0.99, 1.0):
            exact = values[max(0, math.ceil(q * len(values)) - 1)]
            assert abs(sketch.quantile(q) - exact) / exact <= DEFAULT_ALPHA + 1e-9

    def test_quantiles_clamp_to_observed_range(self):
        sketch = sketch_of([5.0])
        assert sketch.p50 == 5.0
        assert sketch.p99 == 5.0

    def test_ordering_of_percentile_properties(self):
        sketch = sketch_of([float(i + 1) for i in range(500)])
        assert sketch.minimum <= sketch.p50 <= sketch.p90 <= sketch.p99
        assert sketch.p99 <= sketch.maximum


class TestMerge:
    def test_merge_is_exact_bucketwise_sum(self):
        left = sketch_of([1.0, 2.0, 3.0])
        right = sketch_of([3.0, 4.0])
        merged = left.merged(right)
        assert merged.count == 5
        assert dict(merged.buckets) == {
            index: dict(left.buckets).get(index, 0)
            + dict(right.buckets).get(index, 0)
            for index in {i for i, _ in left.buckets + right.buckets}
        }

    def test_merge_with_empty_is_identity(self):
        sketch = sketch_of([1.0, 2.0])
        assert sketch.merged(SketchSnapshot()) is sketch
        assert SketchSnapshot().merged(sketch) is sketch

    def test_mismatched_alpha_is_rejected(self):
        left = sketch_of([1.0], alpha=0.01)
        right = sketch_of([1.0], alpha=0.02)
        try:
            left.merged(right)
        except ValueError as exc:
            assert "alpha" in str(exc)
        else:
            raise AssertionError("merge with mismatched alpha must fail")

    def test_builder_absorb_matches_snapshot_merge(self):
        parts = ([0.1, 0.2], [0.3], [0.4, 0.5, 0.6])
        builder = SketchBuilder()
        for part in parts:
            builder.absorb(sketch_of(part))
        merged = sketch_of([v for part in parts for v in part])
        assert pickle.dumps(builder.snapshot()) == pickle.dumps(merged)


positive_floats = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestMergeProperties:
    """Hypothesis: merged partial sketches == whole-stream sketch, bitwise."""

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(positive_floats, min_size=1, max_size=200),
        cut=st.integers(min_value=0, max_value=200),
    )
    def test_split_merge_is_bitwise_identical_to_whole_stream(self, values, cut):
        cut = min(cut, len(values))
        merged = sketch_of(values[:cut]).merged(sketch_of(values[cut:]))
        whole = sketch_of(values)
        assert pickle.dumps(merged) == pickle.dumps(whole)

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(positive_floats, min_size=1, max_size=200),
        cut=st.integers(min_value=0, max_value=200),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_merged_quantiles_equal_whole_stream_quantiles(self, values, cut, q):
        cut = min(cut, len(values))
        merged = sketch_of(values[:cut]).merged(sketch_of(values[cut:]))
        assert merged.quantile(q) == sketch_of(values).quantile(q)

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(positive_floats, min_size=1, max_size=100))
    def test_merge_is_order_independent(self, values):
        thirds = len(values) // 3
        a = sketch_of(values[:thirds])
        b = sketch_of(values[thirds : 2 * thirds])
        c = sketch_of(values[2 * thirds :])
        forward = a.merged(b).merged(c)
        backward = c.merged(a).merged(b)
        assert pickle.dumps(forward) == pickle.dumps(backward)


class TestRegistryIntegration:
    def test_observe_feeds_a_same_name_sketch(self):
        registry = MetricsRegistry()
        for value in (0.01, 0.02, 0.04):
            registry.observe("solve.seconds.herad", value)
        sketch = registry.sketch("solve.seconds.herad")
        assert sketch is not None
        assert sketch.count == 3
        assert registry.sketch("never.observed") is None

    def test_snapshot_carries_sketches_and_merges_exactly(self):
        serial = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            serial.observe("latency", value)

        home = MetricsRegistry()
        worker_a, worker_b = MetricsRegistry(), MetricsRegistry()
        worker_a.observe("latency", 1.0)
        worker_a.observe("latency", 2.0)
        worker_b.observe("latency", 3.0)
        worker_b.observe("latency", 4.0)
        home.merge(worker_a.snapshot())
        home.merge(worker_b.snapshot())

        assert pickle.dumps(home.snapshot().sketches) == pickle.dumps(
            serial.snapshot().sketches
        )
        sketch = home.snapshot().sketch("latency")
        assert sketch is not None and sketch.count == 4
