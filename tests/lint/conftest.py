"""Fixtures for the lint-engine tests: lint small inline sources."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_paths


@pytest.fixture
def lint_source(tmp_path: Path):
    """Lint a dedented source snippet written at a package-relative path.

    The relative path controls the inferred module name (and therefore which
    path-scoped rules apply): ``src/repro/core/sample.py`` lints as
    ``repro.core.sample``.
    """

    def _lint(
        source: str,
        relpath: str = "src/repro/core/sample.py",
        rules: "list[str] | None" = None,
    ):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return lint_paths([path], rule_names=rules, root=tmp_path).findings

    return _lint
