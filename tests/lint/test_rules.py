"""Positive and negative fixtures for every project lint rule."""

from __future__ import annotations


def _ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# REP101 — float-equality
# ---------------------------------------------------------------------------


class TestFloatEquality:
    def test_flags_bare_equality_on_periods(self, lint_source):
        findings = lint_source(
            """
            def check(period: float, best_period: float) -> bool:
                return period == best_period
            """,
            rules=["float-equality"],
        )
        assert _ids(findings) == ["REP101"]
        assert "summation orders" in findings[0].message
        assert "isclose" in findings[0].hint

    def test_flags_inequality_on_weight_calls(self, lint_source):
        findings = lint_source(
            """
            def check(profile, start: int, end: int, w: float) -> bool:
                return profile.interval_weight(start, end) != w
            """,
            rules=["float-equality"],
        )
        assert _ids(findings) == ["REP101"]

    def test_allows_comparison_against_infinity(self, lint_source):
        findings = lint_source(
            """
            import math

            INFINITY = math.inf

            def check(period: float) -> bool:
                if period == float("inf"):
                    return True
                return period == INFINITY
            """,
            rules=["float-equality"],
        )
        assert findings == ()

    def test_allows_isclose_and_int_comparisons(self, lint_source):
        findings = lint_source(
            """
            import math

            def check(period: float, best_period: float, cores: int) -> bool:
                return math.isclose(period, best_period) and cores == 3
            """,
            rules=["float-equality"],
        )
        assert findings == ()

    def test_pragma_suppresses_with_rule_name(self, lint_source):
        findings = lint_source(
            """
            def check(period: float, other_period: float) -> bool:
                return period == other_period  # lint: ignore[float-equality]
            """,
            rules=["float-equality"],
        )
        assert findings == ()

    def test_pragma_with_other_rule_does_not_suppress(self, lint_source):
        findings = lint_source(
            """
            def check(period: float, other_period: float) -> bool:
                return period == other_period  # lint: ignore[no-print]
            """,
            rules=["float-equality"],
        )
        assert _ids(findings) == ["REP101"]

    def test_blanket_pragma_suppresses(self, lint_source):
        findings = lint_source(
            """
            def check(period: float, other_period: float) -> bool:
                return period == other_period  # lint: ignore
            """,
            rules=["float-equality"],
        )
        assert findings == ()


# ---------------------------------------------------------------------------
# REP102 — frozen-mutation
# ---------------------------------------------------------------------------


class TestFrozenMutation:
    def test_flags_field_assignment_on_foreign_object(self, lint_source):
        findings = lint_source(
            """
            def tamper(stage):
                stage.cores = 3
            """,
            rules=["frozen-mutation"],
        )
        assert _ids(findings) == ["REP102"]
        assert "'cores'" in findings[0].message

    def test_flags_setattr_escape_on_foreign_object(self, lint_source):
        findings = lint_source(
            """
            def tamper(chain):
                object.__setattr__(chain, "tasks", ())
            """,
            rules=["frozen-mutation"],
        )
        assert _ids(findings) == ["REP102"]

    def test_allows_self_mutation_and_own_constructor(self, lint_source):
        findings = lint_source(
            """
            class Builder:
                def __init__(self) -> None:
                    self.cores = 1
                    object.__setattr__(self, "tasks", ())

                def grow(self) -> None:
                    self.cores += 1
            """,
            rules=["frozen-mutation"],
        )
        assert findings == ()

    def test_flags_augmented_assignment(self, lint_source):
        findings = lint_source(
            """
            def tamper(stage):
                stage.cores += 1
            """,
            rules=["frozen-mutation"],
        )
        assert _ids(findings) == ["REP102"]


# ---------------------------------------------------------------------------
# REP103 — error-hierarchy
# ---------------------------------------------------------------------------


class TestErrorHierarchy:
    def test_flags_builtin_raise_in_core(self, lint_source):
        findings = lint_source(
            """
            def validate(n: int) -> None:
                if n < 1:
                    raise ValueError(f"bad {n}")
            """,
            rules=["error-hierarchy"],
        )
        assert _ids(findings) == ["REP103"]
        assert "ValueError" in findings[0].message

    def test_allows_hierarchy_raises(self, lint_source):
        findings = lint_source(
            """
            from repro.core.errors import InvalidChainError

            def validate(n: int) -> None:
                if n < 1:
                    raise InvalidChainError(f"bad {n}")
            """,
            rules=["error-hierarchy"],
        )
        assert findings == ()

    def test_does_not_apply_outside_core(self, lint_source):
        findings = lint_source(
            """
            def validate(n: int) -> None:
                if n < 1:
                    raise ValueError(f"bad {n}")
            """,
            relpath="src/repro/analysis/sample.py",
            rules=["error-hierarchy"],
        )
        assert findings == ()


# ---------------------------------------------------------------------------
# REP104 — determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_flags_wall_clock(self, lint_source):
        findings = lint_source(
            """
            import time

            def stamp() -> float:
                return time.time()
            """,
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]

    def test_flags_global_random(self, lint_source):
        findings = lint_source(
            """
            import random

            def draw() -> float:
                return random.random()
            """,
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]

    def test_flags_unseeded_default_rng(self, lint_source):
        findings = lint_source(
            """
            import numpy as np

            def draw() -> float:
                rng = np.random.default_rng()
                return float(rng.random())
            """,
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]

    def test_flags_set_iteration(self, lint_source):
        findings = lint_source(
            """
            def walk(items):
                for item in set(items):
                    yield item
            """,
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]
        assert "hash-dependent" in findings[0].message

    def test_allows_seeded_rng_and_perf_counter(self, lint_source):
        findings = lint_source(
            """
            import time
            import numpy as np

            def draw(seed: int) -> float:
                rng = np.random.default_rng(seed)
                start = time.perf_counter()
                value = float(rng.random())
                return value + 0 * (time.perf_counter() - start)
            """,
            rules=["determinism"],
        )
        assert findings == ()

    def test_does_not_apply_outside_solver_paths(self, lint_source):
        findings = lint_source(
            """
            import time

            def stamp() -> float:
                return time.time()
            """,
            relpath="src/repro/analysis/sample.py",
            rules=["determinism"],
        )
        assert findings == ()

    def test_flags_unsorted_listdir_iteration(self, lint_source):
        findings = lint_source(
            """
            import os

            def load(root):
                for name in os.listdir(root):
                    yield name
            """,
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]
        assert "filesystem" in findings[0].message

    def test_flags_unsorted_glob_comprehension(self, lint_source):
        findings = lint_source(
            """
            import glob

            def load(pattern):
                return [p for p in glob.glob(pattern)]
            """,
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]

    def test_allows_sorted_listdir_iteration(self, lint_source):
        findings = lint_source(
            """
            import glob
            import os

            def load(root, pattern):
                for name in sorted(os.listdir(root)):
                    yield name
                for path in sorted(glob.glob(pattern)):
                    yield path
            """,
            rules=["determinism"],
        )
        assert findings == ()

    def test_flags_bare_popitem(self, lint_source):
        findings = lint_source(
            """
            def drain(table: dict):
                while table:
                    yield table.popitem()
            """,
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]
        assert "popitem" in findings[0].message

    def test_allows_directed_popitem(self, lint_source):
        findings = lint_source(
            """
            def drain(table):
                while table:
                    yield table.popitem(last=False)
            """,
            rules=["determinism"],
        )
        assert findings == ()


# ---------------------------------------------------------------------------
# REP105 — numpy-scalar-leak
# ---------------------------------------------------------------------------


class TestNumpyScalarLeak:
    def test_flags_unwrapped_reduction(self, lint_source):
        findings = lint_source(
            """
            def best(weights) -> float:
                return weights.max()
            """,
            rules=["numpy-scalar-leak"],
        )
        assert _ids(findings) == ["REP105"]

    def test_flags_np_call_return(self, lint_source):
        findings = lint_source(
            """
            import numpy as np

            def total(values) -> float:
                return np.sum(values)
            """,
            rules=["numpy-scalar-leak"],
        )
        assert _ids(findings) == ["REP105"]

    def test_allows_float_wrapped_returns(self, lint_source):
        findings = lint_source(
            """
            import numpy as np

            def best(weights) -> float:
                return float(weights.max())

            def total(values) -> float:
                return float(np.sum(values))
            """,
            rules=["numpy-scalar-leak"],
        )
        assert findings == ()

    def test_ignores_private_functions(self, lint_source):
        findings = lint_source(
            """
            def _best(weights) -> float:
                return weights.max()
            """,
            rules=["numpy-scalar-leak"],
        )
        assert findings == ()


# ---------------------------------------------------------------------------
# REP106 — public-annotations
# ---------------------------------------------------------------------------


class TestPublicAnnotations:
    def test_flags_missing_annotations(self, lint_source):
        findings = lint_source(
            """
            def schedule(chain, resources) -> None:
                del chain, resources
            """,
            rules=["public-annotations"],
        )
        assert _ids(findings) == ["REP106"]
        assert "chain" in findings[0].message
        assert "resources" in findings[0].message

    def test_flags_missing_return_annotation(self, lint_source):
        findings = lint_source(
            """
            def schedule(chain: object):
                return chain
            """,
            rules=["public-annotations"],
        )
        assert _ids(findings) == ["REP106"]
        assert "return" in findings[0].message

    def test_allows_fully_annotated_and_private(self, lint_source):
        findings = lint_source(
            """
            def schedule(chain: object, *, jobs: int = 1) -> object:
                return _helper(chain, jobs)

            def _helper(chain, jobs):
                return chain

            class Planner:
                def plan(self, chain: object) -> object:
                    def local(x):
                        return x

                    return local(chain)
            """,
            rules=["public-annotations"],
        )
        assert findings == ()

    def test_does_not_apply_outside_core(self, lint_source):
        findings = lint_source(
            """
            def schedule(chain, resources):
                return chain
            """,
            relpath="src/repro/analysis/sample.py",
            rules=["public-annotations"],
        )
        assert findings == ()


# ---------------------------------------------------------------------------
# REP107 — no-print
# ---------------------------------------------------------------------------


class TestNoPrint:
    def test_flags_print_in_library_code(self, lint_source):
        findings = lint_source(
            """
            def report(value: float) -> None:
                print(value)
            """,
            relpath="src/repro/workloads/sample.py",
            rules=["no-print"],
        )
        assert _ids(findings) == ["REP107"]

    def test_flags_debugger_leftovers(self, lint_source):
        findings = lint_source(
            """
            import pdb

            def report(value: float) -> None:
                pdb.set_trace()
            """,
            relpath="src/repro/workloads/sample.py",
            rules=["no-print"],
        )
        assert _ids(findings) == ["REP107"]

    def test_allows_print_in_cli_modules(self, lint_source):
        findings = lint_source(
            """
            def report(value: float) -> None:
                print(value)
            """,
            relpath="src/repro/cli.py",
            rules=["no-print"],
        )
        assert findings == ()


# ---------------------------------------------------------------------------
# REP108 — picklable-workers
# ---------------------------------------------------------------------------


class TestPicklableWorkers:
    def test_flags_lambda_dispatch(self, lint_source):
        findings = lint_source(
            """
            def run(pool, items):
                return list(pool.map(lambda x: x + 1, items))
            """,
            relpath="src/repro/engine/sample.py",
            rules=["picklable-workers"],
        )
        assert _ids(findings) == ["REP108"]

    def test_flags_closure_dispatch(self, lint_source):
        findings = lint_source(
            """
            def run(pool, items, offset):
                def worker(x):
                    return x + offset

                return list(pool.map(worker, items))
            """,
            relpath="src/repro/engine/sample.py",
            rules=["picklable-workers"],
        )
        assert _ids(findings) == ["REP108"]
        assert "worker" in findings[0].message

    def test_allows_module_level_worker(self, lint_source):
        findings = lint_source(
            """
            def worker(x):
                return x + 1

            def run(pool, items):
                return list(pool.map(worker, items))
            """,
            relpath="src/repro/engine/sample.py",
            rules=["picklable-workers"],
        )
        assert findings == ()

    def test_does_not_apply_outside_engine(self, lint_source):
        findings = lint_source(
            """
            def run(pool, items):
                return list(pool.map(lambda x: x + 1, items))
            """,
            relpath="src/repro/analysis/sample.py",
            rules=["picklable-workers"],
        )
        assert findings == ()


class TestBroadExcept:
    def test_flags_bare_except(self, lint_source):
        findings = lint_source(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
            relpath="src/repro/engine/sample.py",
            rules=["broad-except"],
        )
        assert _ids(findings) == ["REP109"]
        assert "bare" in findings[0].message

    def test_flags_base_exception(self, lint_source):
        findings = lint_source(
            """
            def run(fn):
                try:
                    fn()
                except BaseException:
                    pass
            """,
            relpath="src/repro/core/sample.py",
            rules=["broad-except"],
        )
        assert _ids(findings) == ["REP109"]

    def test_flags_base_exception_in_tuple(self, lint_source):
        findings = lint_source(
            """
            def run(fn):
                try:
                    fn()
                except (ValueError, BaseException) as exc:
                    return exc
            """,
            relpath="src/repro/cli.py",
            rules=["broad-except"],
        )
        assert _ids(findings) == ["REP109"]

    def test_allows_exception(self, lint_source):
        findings = lint_source(
            """
            def run(fn):
                try:
                    fn()
                except Exception:
                    pass
                except (ValueError, KeyError):
                    pass
            """,
            relpath="src/repro/engine/sample.py",
            rules=["broad-except"],
        )
        assert findings == ()

    def test_resilience_module_is_exempt(self, lint_source):
        findings = lint_source(
            """
            def run(fn):
                try:
                    fn()
                except BaseException:
                    raise
            """,
            relpath="src/repro/engine/resilience.py",
            rules=["broad-except"],
        )
        assert findings == ()

    def test_pragma_suppresses(self, lint_source):
        findings = lint_source(
            """
            def run(fn):
                try:
                    fn()
                except BaseException as exc:  # lint: ignore[broad-except]
                    return exc
            """,
            relpath="src/repro/streampu/sample.py",
            rules=["broad-except"],
        )
        assert findings == ()


class TestRawTiming:
    """REP110: raw clock reads are confined to repro.obs (and the profiler)."""

    def test_flags_perf_counter_attribute_call(self, lint_source):
        findings = lint_source(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            rules=["raw-timing"],
        )
        assert len(findings) == 1
        assert findings[0].rule_id == "REP110"
        assert "perf_counter" in findings[0].message

    def test_flags_aliased_module(self, lint_source):
        findings = lint_source(
            """
            import time as clock

            def measure():
                return clock.monotonic()
            """,
            rules=["raw-timing"],
        )
        assert len(findings) == 1

    def test_flags_from_import_call(self, lint_source):
        findings = lint_source(
            """
            from time import perf_counter

            def measure():
                return perf_counter()
            """,
            rules=["raw-timing"],
        )
        assert len(findings) == 1

    def test_allows_time_sleep(self, lint_source):
        findings = lint_source(
            """
            import time

            def backoff(delay):
                time.sleep(delay)
            """,
            rules=["raw-timing"],
        )
        assert findings == ()

    def test_obs_clock_module_is_exempt(self, lint_source):
        findings = lint_source(
            """
            import time

            def monotonic():
                return time.perf_counter()
            """,
            relpath="src/repro/obs/clock.py",
            rules=["raw-timing"],
        )
        assert findings == ()

    def test_obs_profile_module_is_exempt(self, lint_source):
        findings = lint_source(
            """
            import time

            def stamp():
                return time.perf_counter()
            """,
            relpath="src/repro/obs/profile.py",
            rules=["raw-timing"],
        )
        assert findings == ()

    def test_new_obs_module_is_not_exempt_by_location(self, lint_source):
        # The sanctioned-clock allowlist names modules exactly: dropping a
        # new module into repro/obs/ must NOT grant it raw-clock access.
        findings = lint_source(
            """
            import time

            def sample():
                return time.perf_counter()
            """,
            relpath="src/repro/obs/sampler.py",
            rules=["raw-timing"],
        )
        assert len(findings) == 1
        assert findings[0].rule_id == "REP110"
        assert "perf_counter" in findings[0].message

    def test_streampu_profiler_is_exempt(self, lint_source):
        findings = lint_source(
            """
            import time

            def stamp():
                return time.monotonic()
            """,
            relpath="src/repro/streampu/profiler.py",
            rules=["raw-timing"],
        )
        assert findings == ()

    def test_obs_clock_import_is_not_flagged(self, lint_source):
        findings = lint_source(
            """
            from repro.obs.clock import monotonic

            def measure():
                return monotonic()
            """,
            rules=["raw-timing"],
        )
        assert findings == ()

    def test_pragma_suppresses(self, lint_source):
        findings = lint_source(
            """
            import time

            def measure():
                return time.perf_counter()  # lint: ignore[raw-timing]
            """,
            rules=["raw-timing"],
        )
        assert findings == ()


# ---------------------------------------------------------------------------
# REP111 — two-type-assumption
# ---------------------------------------------------------------------------


class TestTwoTypeAssumption:
    """REP111: k-type platform discipline outside the sanctioned k=2 shims."""

    def test_flags_coretype_other(self, lint_source):
        findings = lint_source(
            """
            from repro.core.types import CoreType

            def flip(core_type: CoreType) -> CoreType:
                return core_type.other
            """,
            rules=["two-type-assumption"],
        )
        assert _ids(findings) == ["REP111"]
        assert "two-type" in findings[0].message
        assert "core_types" in findings[0].hint

    def test_flags_identity_check_against_member(self, lint_source):
        findings = lint_source(
            """
            from repro.core.types import CoreType

            def is_big(core_type) -> bool:
                return core_type is CoreType.BIG
            """,
            rules=["two-type-assumption"],
        )
        assert _ids(findings) == ["REP111"]
        assert "identity" in findings[0].message

    def test_flags_literal_two_type_enumeration(self, lint_source):
        findings = lint_source(
            """
            from repro.core.types import CoreType

            def walk():
                for core_type in (CoreType.BIG, CoreType.LITTLE):
                    yield core_type
            """,
            rules=["two-type-assumption"],
        )
        assert _ids(findings) == ["REP111"]
        assert "hard-codes two core types" in findings[0].message

    def test_allows_ktype_iteration_idiom(self, lint_source):
        findings = lint_source(
            """
            from repro.core.types import Resources

            def walk(resources: Resources):
                for core_type in resources.types():
                    yield resources.count(core_type)
            """,
            rules=["two-type-assumption"],
        )
        assert findings == ()

    def test_allows_equality_against_member(self, lint_source):
        findings = lint_source(
            """
            from repro.core.types import CoreType

            def is_little(core_type) -> bool:
                return core_type == CoreType.LITTLE
            """,
            rules=["two-type-assumption"],
        )
        assert findings == ()

    def test_sanctioned_shims_are_exempt(self, lint_source):
        source = """
            from repro.core.types import CoreType

            def walk(core_type):
                for vtype in (CoreType.BIG, CoreType.LITTLE):
                    if vtype is CoreType.BIG:
                        yield core_type.other
        """
        for shim in ("herad", "herad_reference", "norep"):
            findings = lint_source(
                source,
                relpath=f"src/repro/core/{shim}.py",
                rules=["two-type-assumption"],
            )
            assert findings == ()
        # ...but the same code in an ordinary core module is flagged.
        findings = lint_source(
            source,
            relpath="src/repro/core/sample.py",
            rules=["two-type-assumption"],
        )
        assert len(findings) == 3

    def test_unrelated_other_attribute_is_not_flagged(self, lint_source):
        findings = lint_source(
            """
            def pick(pair):
                return pair.other
            """,
            rules=["two-type-assumption"],
        )
        assert findings == ()

    def test_pragma_suppresses(self, lint_source):
        findings = lint_source(
            """
            from repro.core.types import CoreType

            def flip(core_type: CoreType) -> CoreType:
                return core_type.other  # lint: ignore[two-type-assumption]
            """,
            rules=["two-type-assumption"],
        )
        assert findings == ()
