"""Per-line pragma semantics: statement-span widening and decorated defs.

Regression coverage for the two narrow widenings documented in
``repro.lint.base``: a pragma on any line of one multi-line *simple*
statement covers the whole statement, a pragma on the ``def`` line covers
findings anchored to the decorator lines, and — crucially — a pragma on a
compound-statement header must NOT silence the suite beneath it.
"""

from __future__ import annotations


def _ids(findings):
    return [f.rule_id for f in findings]


class TestMultiLineStatementPragmas:
    def test_finding_fires_without_pragma(self, lint_source):
        findings = lint_source(
            """
            import time

            def stamp() -> float:
                return max(
                    time.time(),
                    0.0,
                )
            """,
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]

    def test_pragma_on_first_line_covers_whole_statement(self, lint_source):
        findings = lint_source(
            """
            import time

            def stamp() -> float:
                return max(  # lint: ignore[determinism]
                    time.time(),
                    0.0,
                )
            """,
            rules=["determinism"],
        )
        assert findings == ()

    def test_pragma_on_last_line_covers_whole_statement(self, lint_source):
        findings = lint_source(
            """
            import time

            def stamp() -> float:
                return max(
                    time.time(),
                    0.0,
                )  # lint: ignore[determinism]
            """,
            rules=["determinism"],
        )
        assert findings == ()

    def test_compound_header_pragma_does_not_cover_suite(self, lint_source):
        # A pragma on an `if` line must not silence the body: compound
        # statements are never widened.
        findings = lint_source(
            """
            import time

            def stamp(flag: bool) -> float:
                if flag:  # lint: ignore[determinism]
                    return time.time()
                return 0.0
            """,
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]

    def test_pragma_on_unrelated_line_does_not_leak(self, lint_source):
        findings = lint_source(
            """
            import time

            def stamp() -> float:
                x = 1.5  # lint: ignore[determinism]
                return time.time()
            """,
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]


class TestDecoratedDefPragmas:
    _DECORATED = """
        import time

        def tag(value):
            def wrap(fn):
                return fn
            return wrap

        @tag(time.time()){decorator_pragma}
        def solve() -> int:{def_pragma}
            return 1
        """

    def test_decorator_anchored_finding_fires(self, lint_source):
        findings = lint_source(
            self._DECORATED.format(decorator_pragma="", def_pragma=""),
            rules=["determinism"],
        )
        assert _ids(findings) == ["REP104"]

    def test_pragma_on_def_line_suppresses_decorator_finding(self, lint_source):
        findings = lint_source(
            self._DECORATED.format(
                decorator_pragma="",
                def_pragma="  # lint: ignore[determinism]",
            ),
            rules=["determinism"],
        )
        assert findings == ()

    def test_pragma_on_decorator_line_still_works(self, lint_source):
        findings = lint_source(
            self._DECORATED.format(
                decorator_pragma="  # lint: ignore[determinism]",
                def_pragma="",
            ),
            rules=["determinism"],
        )
        assert findings == ()
