"""SARIF 2.1.0 reporter: schema shape GitHub code scanning accepts."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import LintReport, lint_project, render_sarif

FIXTURES = Path(__file__).resolve().parents[1] / "project_fixtures"


@pytest.fixture(scope="module")
def sarif():
    report = lint_project(FIXTURES / "proj_bad" / "repro", allowlist=())
    return json.loads(render_sarif(report))


class TestSarifShape:
    def test_top_level_envelope(self, sarif):
        assert sarif["version"] == "2.1.0"
        assert sarif["$schema"].endswith("sarif-schema-2.1.0.json")
        assert isinstance(sarif["runs"], list) and len(sarif["runs"]) == 1

    def test_driver_and_rule_metadata(self, sarif):
        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == sorted(set(ids))  # deduplicated, stable order
        assert set(ids) == {
            "REP201", "REP202", "REP203", "REP204", "REP205", "REP206",
        }
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] == "error"

    def test_results_reference_rules_by_index(self, sarif):
        driver = sarif["runs"][0]["tool"]["driver"]
        ids = [rule["id"] for rule in driver["rules"]]
        for result in sarif["runs"][0]["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]
            assert result["level"] == "error"
            assert result["message"]["text"]
            (location,) = result["locations"]
            physical = location["physicalLocation"]
            assert physical["artifactLocation"]["uri"].endswith(".py")
            assert physical["region"]["startLine"] >= 1
            assert physical["region"]["startColumn"] >= 1

    def test_evidence_maps_to_related_locations(self, sarif):
        rep201 = [
            r
            for r in sarif["runs"][0]["results"]
            if r["ruleId"] == "REP201"
        ]
        assert rep201 and all("relatedLocations" in r for r in rep201)
        related = rep201[0]["relatedLocations"]
        assert len(related) >= 2  # definition site + call path + site
        for step in related:
            assert step["message"]["text"]
            assert step["physicalLocation"]["region"]["startLine"] >= 1

    def test_empty_report_renders_valid_document(self):
        document = json.loads(
            render_sarif(LintReport(findings=(), files_checked=0))
        )
        assert document["runs"][0]["results"] == []
        assert document["runs"][0]["tool"]["driver"]["rules"] == []
