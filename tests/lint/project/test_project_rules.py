"""Positive/negative demonstrations of REP201-REP206 on the fixture corpora.

``proj_bad`` seeds exactly one deliberate violation per rule (plus the
incidental read that accompanies the seeded write); every rule must fire
at precisely the seeded sites and nowhere else.  ``proj_clean`` is the
behaviorally-equivalent twin written with the blessed patterns; every
rule must stay silent on it.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import Severity, lint_project
from repro.lint.project import AllowEntry

FIXTURES = Path(__file__).resolve().parents[1] / "project_fixtures"


@pytest.fixture(scope="module")
def bad_report():
    return lint_project(FIXTURES / "proj_bad" / "repro", allowlist=())


@pytest.fixture(scope="module")
def clean_report():
    return lint_project(FIXTURES / "proj_clean" / "repro", allowlist=())


def _hits(report, rule_id):
    return sorted(
        (f.path, f.line) for f in report.findings if f.rule_id == rule_id
    )


class TestSeededCorpusFires:
    def test_rep201_worker_global_write(self, bad_report):
        assert _hits(bad_report, "REP201") == [("repro/core/solvers.py", 17)]

    def test_rep202_lock_discipline(self, bad_report):
        assert _hits(bad_report, "REP202") == [("repro/engine/cache.py", 16)]

    def test_rep203_fork_unsafe_capture(self, bad_report):
        assert _hits(bad_report, "REP203") == [
            ("repro/engine/dispatch.py", 22),
            ("repro/engine/shmem.py", 22),
        ]

    def test_rep204_layer_boundary(self, bad_report):
        assert _hits(bad_report, "REP204") == [
            ("repro/core/uses_engine.py", 3),
            ("repro/lint/helper.py", 3),
        ]

    def test_rep205_memo_purity(self, bad_report):
        assert _hits(bad_report, "REP205") == [
            ("repro/core/solvers.py", 15),  # stdlib clock
            ("repro/core/solvers.py", 16),  # ambient mutable read
            ("repro/core/solvers.py", 17),  # read half of the seeded write
        ]

    def test_rep206_dead_public_symbol(self, bad_report):
        assert _hits(bad_report, "REP206") == [("repro/obs/constants.py", 3)]
        (finding,) = [
            f for f in bad_report.findings if f.rule_id == "REP206"
        ]
        assert "DEAD_LIMIT" in finding.message
        assert "LIVE_LIMIT" not in finding.message

    def test_nothing_else_fires(self, bad_report):
        assert len(bad_report.findings) == 10
        assert all(f.severity is Severity.ERROR for f in bad_report.findings)
        assert not bad_report.ok

    def test_findings_carry_evidence_chains(self, bad_report):
        (rep201,) = [f for f in bad_report.findings if f.rule_id == "REP201"]
        notes = [step.note for step in rep201.evidence]
        # definition site -> call path -> violation site
        assert any("binding `_COUNTS` defined here" in n for n in notes)
        assert any("worker entry point" in n for n in notes)
        assert rep201.evidence[-1].line == rep201.line


class TestCleanCorpusSilent:
    def test_no_findings(self, clean_report):
        assert clean_report.findings == ()
        assert clean_report.ok

    def test_same_rules_ran(self, clean_report):
        assert clean_report.files_checked == 11


_BOX = """\
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        with self._lock:
            self._items.append(item)

    def peek(self):{pragma}
        return self._items[0]{line_pragma}
"""


def _write_box(tmp_path, pragma="", line_pragma=""):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "box.py").write_text(
        textwrap.dedent(_BOX).format(pragma=pragma, line_pragma=line_pragma)
    )
    return pkg


class TestSuppressionPlumbing:
    def test_violation_fires_without_suppression(self, tmp_path):
        report = lint_project(_write_box(tmp_path), allowlist=())
        assert _hits(report, "REP202") == [("repro/box.py", 14)]

    def test_per_line_pragma_suppresses(self, tmp_path):
        pkg = _write_box(
            tmp_path, line_pragma="  # lint: ignore[lock-discipline]"
        )
        report = lint_project(pkg, allowlist=())
        assert report.findings == ()

    def test_allowlist_entry_suppresses(self, tmp_path):
        pkg = _write_box(tmp_path)
        entry = AllowEntry(
            rule_id="REP202",
            module="repro.box",
            symbol="Box.peek",
            justification="test: sanctioned site",
        )
        report = lint_project(pkg, allowlist=(entry,))
        assert report.findings == ()

    def test_allowlist_is_rule_scoped(self, tmp_path):
        pkg = _write_box(tmp_path)
        entry = AllowEntry(
            rule_id="REP201",  # wrong rule: must not silence REP202
            module="repro.box",
            symbol="Box.peek",
            justification="test: wrong rule",
        )
        report = lint_project(pkg, allowlist=(entry,))
        assert _hits(report, "REP202") == [("repro/box.py", 14)]
