"""Graph-builder sanity: symbol table, import map, call graph, entries."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.project import ProjectContext

FIXTURES = Path(__file__).resolve().parents[1] / "project_fixtures"


@pytest.fixture(scope="module")
def pctx():
    return ProjectContext.build(FIXTURES / "proj_bad" / "repro", allowlist=())


class TestSymbolTable:
    def test_modules_discovered(self, pctx):
        assert "repro.core.solvers" in pctx.facts
        assert "repro.engine.dispatch" in pctx.facts

    def test_annassign_binding_classified_mutable(self, pctx):
        # STRATEGIES uses an annotated assignment; the dict literal must
        # still classify as a mutable module-level binding.
        binding = pctx.facts["repro.core.registry"].binding("STRATEGIES")
        assert binding is not None
        assert pctx.binding_is_mutable(binding)

    def test_underscore_class_instance_is_mutable(self, pctx):
        resolved = pctx.resolve_module_binding("repro.core.solvers", "_COUNTS")
        assert resolved is not None
        assert pctx.binding_is_mutable(resolved[1])

    def test_frozen_dataclass_detected(self, pctx):
        assert "WorkUnit" in pctx.frozen_class_names


class TestImportResolution:
    def test_cross_module_class_resolves_to_ctor(self, pctx):
        fids = pctx.resolve_callable("repro.core.uses_engine", "Cache")
        assert fids == ("repro.engine.cache:Cache.__init__",)

    def test_unknown_name_resolves_to_nothing(self, pctx):
        assert pctx.resolve_callable("repro.core.solvers", "no_such") == ()


class TestCallGraph:
    def test_direct_call_edge(self, pctx):
        edges = dict(pctx.call_edges["repro.core.solvers:solve_chain_batch"])
        assert "repro.core.solvers:solve_chain" in edges

    def test_reachability_walks_edges(self, pctx):
        reach = pctx.reachable_from(["repro.core.solvers:solve_chain_batch"])
        assert "repro.core.solvers:solve_chain" in reach
        parent, _ = reach["repro.core.solvers:solve_chain"]
        assert parent == "repro.core.solvers:solve_chain_batch"


class TestEntryDiscovery:
    def test_strategy_roots_found(self, pctx):
        roots = {(r.fid, r.keyword) for r in pctx.strategy_roots}
        assert roots == {
            ("repro.core.solvers:solve_chain", "func"),
            ("repro.core.solvers:solve_chain_batch", "batch_func"),
        }

    def test_dispatch_site_found(self, pctx):
        sites = {s.module: s for s in pctx.dispatch_sites}
        assert set(sites) == {
            "repro.engine.dispatch",
            "repro.engine.shmem",
        }
        site = sites["repro.engine.dispatch"]
        assert site.method == "map"
        assert site.target_fids == ("repro.engine.dispatch:run_unit",)

    def test_worker_entries_union(self, pctx):
        entries = pctx.worker_entry_points()
        assert "repro.engine.dispatch:run_unit" in entries
        assert "repro.core.solvers:solve_chain" in entries


class TestPackageGraph:
    def test_upward_edge_visible(self, pctx):
        graph = pctx.package_import_graph()
        targets = {tgt for tgt, _, _ in graph.get("core", set())}
        assert "engine" in targets  # the seeded inversion
