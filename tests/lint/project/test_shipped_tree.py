"""The shipped tree passes the project tier, and the layer contract holds.

These tests are the CI gate the ISSUE asks for: any future import that
inverts a layer, any new worker-side global write, and any stale
allowlist entry fails here before it fails in production.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.lint import lint_project
from repro.lint.project import ALLOWLIST, ProjectContext
from repro.lint.project.rules import LAYER_RANKS

ROOT = Path(__file__).resolve().parents[3]
PACKAGE = ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def pctx():
    return ProjectContext.build(PACKAGE, project_root=ROOT)


class TestShippedTreeClean:
    def test_project_lint_exits_clean(self):
        report = lint_project(PACKAGE, project_root=ROOT)
        assert report.findings == (), [f.location for f in report.findings]
        assert report.ok

    def test_allowlist_entries_are_all_live(self):
        """Every allowlist entry suppresses a real finding (no stale entries).

        With the allowlist disabled, the only findings that appear are at
        the sanctioned modules for the sanctioned rules — nothing more
        (the tree is otherwise clean) and nothing less (no entry is dead
        weight).
        """
        bare = lint_project(PACKAGE, project_root=ROOT, allowlist=())
        reappeared = {(f.rule_id, f.path) for f in bare.findings}
        sanctioned = {
            (entry.rule_id, str(Path(*entry.module.split("."))) + ".py")
            for entry in ALLOWLIST
        }
        assert reappeared == {
            (rule_id, f"src/{path}") for rule_id, path in sanctioned
        }

    def test_allowlist_entries_carry_justifications(self):
        for entry in ALLOWLIST:
            assert len(entry.justification) > 20, entry


class TestLayerContract:
    def test_every_import_flows_downward(self, pctx):
        """The REP204 contract, asserted structurally: rank(src) > rank(tgt)."""
        graph = pctx.package_import_graph()
        for src_pkg, edges in graph.items():
            for tgt_pkg, module, lineno in edges:
                if src_pkg == tgt_pkg:
                    continue
                assert LAYER_RANKS[src_pkg] > LAYER_RANKS[tgt_pkg], (
                    f"{module}:{lineno} imports {tgt_pkg} from {src_pkg}: "
                    f"layer inversion"
                )

    def test_lint_package_is_stdlib_only(self, pctx):
        for module, facts in pctx.facts.items():
            if not module.startswith("repro.lint"):
                continue
            for record in facts.imports:
                target = record.target
                ok = (
                    target == "repro.lint"
                    or target.startswith("repro.lint.")
                    or target.split(".", 1)[0] in sys.stdlib_module_names
                )
                assert ok, f"{module} imports {target}"

    def test_known_layers_all_ranked(self, pctx):
        packages = {
            module.split(".")[1]
            for module in pctx.facts
            if module.count(".") >= 1
        }
        assert packages <= set(LAYER_RANKS), packages - set(LAYER_RANKS)


class TestPerformance:
    def test_full_build_and_rules_under_ten_seconds(self):
        import time

        start = time.monotonic()
        lint_project(PACKAGE, project_root=ROOT)
        assert time.monotonic() - start < 10.0
