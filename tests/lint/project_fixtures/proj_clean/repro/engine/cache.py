"""Lock discipline respected: every access to _data holds the lock."""

import threading


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, object] = {}

    def put(self, key: str, value: object) -> None:
        with self._lock:
            self._data[key] = value

    def size(self) -> int:
        with self._lock:
            return len(self._data)
