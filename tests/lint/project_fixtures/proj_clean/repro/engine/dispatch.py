"""Only a frozen, picklable config crosses the process boundary."""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

from ..core.solvers import solve_chain


@dataclass(frozen=True)
class Config:
    scale: float


@dataclass(frozen=True)
class WorkUnit:
    payload: Any
    config: Config


def run_unit(unit: WorkUnit) -> Any:
    return solve_chain(str(unit.payload), unit.config.scale)


def launch(items: list[Any]) -> list[Any]:
    config = Config(scale=1.5)
    units = [WorkUnit(payload=item, config=config) for item in items]
    with ProcessPoolExecutor() as pool:
        return list(pool.map(run_unit, units))
