"""Workers attach to shared memory by name: only the descriptor crosses."""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory
from typing import Any


@dataclass(frozen=True)
class WorkUnit:
    payload: Any
    segment_name: str


def run_unit(unit: WorkUnit) -> Any:
    view = SharedMemory(name=unit.segment_name)
    try:
        return unit.payload
    finally:
        view.close()


def launch(items: list[Any]) -> list[Any]:
    segment = SharedMemory(create=True, size=64)
    try:
        name = segment.name
        units = [WorkUnit(payload=item, segment_name=name) for item in items]
        with ProcessPoolExecutor() as pool:
            return list(pool.map(run_unit, units))
    finally:
        segment.close()
        segment.unlink()
