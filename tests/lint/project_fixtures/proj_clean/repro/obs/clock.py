"""Sanctioned clock wrapper: the one place allowed to touch time.*."""

import time


def monotonic() -> float:
    return time.monotonic()
