"""Exported constants, both referenced by the solvers."""

__all__ = ["WINDOW", "HORIZON"]

WINDOW = 10
HORIZON = 99
