"""Pure solvers: state arrives through parameters, time through obs.clock."""

from ..obs.clock import monotonic
from ..obs.constants import HORIZON, WINDOW


def solve_chain(profile: str, scale: float) -> tuple[str, float, float]:
    started = monotonic()
    bounded = min(scale * WINDOW, float(HORIZON))
    return (profile, bounded, started)


def solve_chain_batch(
    profiles: list[str], scale: float
) -> list[tuple[str, float, float]]:
    return [solve_chain(profile, scale) for profile in profiles]
