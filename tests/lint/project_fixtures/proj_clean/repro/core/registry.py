"""Strategy registry for the clean corpus."""

from .solvers import solve_chain, solve_chain_batch


class StrategyInfo:
    def __init__(self, name: str, func=None, batch_func=None) -> None:
        self.name = name
        self.func = func
        self.batch_func = batch_func


STRATEGIES: dict[str, StrategyInfo] = {
    "chain": StrategyInfo("chain", func=solve_chain, batch_func=solve_chain_batch),
}
