"""Clean twin of the seeded corpus: every project rule must stay silent."""
