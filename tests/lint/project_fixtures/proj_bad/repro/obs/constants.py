"""Seeded REP206 violation: one exported name no code ever references."""

__all__ = ["LIVE_LIMIT", "DEAD_LIMIT"]

LIVE_LIMIT = 10
DEAD_LIMIT = 99
