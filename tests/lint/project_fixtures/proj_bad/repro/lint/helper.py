"""Seeded REP204 violation: the lint layer must import stdlib only."""

from ..core.solvers import solve_chain  # SEED REP204: lint -> core


def helper():
    return solve_chain
