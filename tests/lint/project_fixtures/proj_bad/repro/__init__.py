"""Seeded-violation corpus: one deliberate REP201-REP206 hit per rule."""
