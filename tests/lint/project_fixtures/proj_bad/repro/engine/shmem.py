"""Seeded REP203 violation: a live SharedMemory handle crosses a WorkUnit."""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory
from typing import Any


@dataclass(frozen=True)
class WorkUnit:
    payload: Any
    segment: Any


def run_unit(unit: WorkUnit) -> Any:
    return unit.payload


def launch(items: list[Any]) -> list[Any]:
    segment = SharedMemory(create=True, size=64)
    try:
        units = [WorkUnit(payload=item, segment=segment) for item in items]  # SEED REP203
        with ProcessPoolExecutor() as pool:
            return list(pool.map(run_unit, units))
    finally:
        segment.close()
        segment.unlink()
