"""Seeded REP202 violation: lock discipline broken in one method."""

import threading


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, object] = {}

    def put(self, key: str, value: object) -> None:
        with self._lock:
            self._data[key] = value

    def size(self) -> int:
        return len(self._data)  # SEED REP202: unguarded access to _data
