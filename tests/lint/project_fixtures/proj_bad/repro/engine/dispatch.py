"""Seeded REP203 violation: a lock-holding object flows into a WorkUnit."""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

from .cache import Cache


@dataclass(frozen=True)
class WorkUnit:
    payload: Any
    cache: Any


def run_unit(unit: WorkUnit) -> Any:
    return unit.payload


def launch(items: list[Any]) -> list[Any]:
    cache = Cache()
    units = [WorkUnit(payload=item, cache=cache) for item in items]  # SEED REP203
    with ProcessPoolExecutor() as pool:
        return list(pool.map(run_unit, units))
