"""Seeded REP201/REP205 violations: worker-side global state and clocks."""

import time

from ..obs.constants import LIVE_LIMIT

#: Module-level mutable state shared by every worker (the seeded race).
_COUNTS: dict[str, int] = {}

#: Ambient tuning table a pure solver must not read.
_TUNING: dict[str, float] = {"alpha": 0.5}


def solve_chain(profile: str) -> tuple[str, float, float]:
    started = time.monotonic()  # SEED REP205: clock outside obs.clock
    scale = _TUNING["alpha"]  # SEED REP205: ambient mutable read
    _COUNTS[profile] = LIVE_LIMIT  # SEED REP201: worker-reachable write
    return (profile, scale, started)


def solve_chain_batch(profiles: list[str]) -> list[tuple[str, float, float]]:
    return [solve_chain(profile) for profile in profiles]
