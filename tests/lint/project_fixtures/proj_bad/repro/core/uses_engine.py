"""Seeded REP204 violation: a core module depending upward on engine."""

from ..engine.cache import Cache  # SEED REP204: core -> engine is upward


def make_cache() -> Cache:
    return Cache()
