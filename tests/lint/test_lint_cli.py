"""Lint engine plumbing: reporters, CLI entry points, and the clean-tree gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main as repro_main
from repro.lint import RULE_REGISTRY, lint_paths
from repro.lint.cli import main as lint_main

_VIOLATION = """\
def check(period: float, other_period: float) -> bool:
    return period == other_period
"""

_CLEAN = """\
import math


def check(period: float, other_period: float) -> bool:
    return math.isclose(period, other_period)
"""


@pytest.fixture
def violation_file(tmp_path: Path) -> Path:
    path = tmp_path / "src" / "repro" / "core" / "bad.py"
    path.parent.mkdir(parents=True)
    path.write_text(_VIOLATION)
    return path


@pytest.fixture
def clean_file(tmp_path: Path) -> Path:
    path = tmp_path / "src" / "repro" / "core" / "good.py"
    path.parent.mkdir(parents=True)
    path.write_text(_CLEAN)
    return path


class TestEngine:
    def test_registry_has_all_rules(self):
        assert [rule.id for rule in RULE_REGISTRY.values()] == [
            *(f"REP10{i}" for i in range(1, 10)),
            "REP110",
            "REP111",
        ]

    def test_directory_walk_finds_violations(self, violation_file: Path):
        report = lint_paths([violation_file.parents[2]])
        assert not report.ok
        assert report.files_checked == 1
        assert [f.rule_id for f in report.findings] == ["REP101"]

    def test_findings_are_sorted_and_located(self, tmp_path: Path):
        path = tmp_path / "src" / "repro" / "core" / "multi.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "def a(period: float, p2_period: float) -> bool:\n"
            "    print(period)\n"
            "    return period == p2_period\n"
        )
        report = lint_paths([path], root=tmp_path)
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
        assert all(
            f.location.startswith("src/repro/core/multi.py:")
            for f in report.findings
        )

    def test_syntax_error_becomes_finding(self, tmp_path: Path):
        path = tmp_path / "broken.py"
        path.write_text("def oops(:\n")
        report = lint_paths([path])
        assert [f.rule_id for f in report.findings] == ["REP000"]
        assert not report.ok

    def test_missing_path_raises(self, tmp_path: Path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"])

    def test_unknown_rule_raises(self, clean_file: Path):
        with pytest.raises(KeyError, match="available"):
            lint_paths([clean_file], rule_names=["no-such-rule"])


class TestStandaloneCli:
    def test_exit_one_on_violations(self, violation_file: Path, capsys):
        assert lint_main([str(violation_file)]) == 1
        out = capsys.readouterr().out
        assert "REP101" in out
        assert "hint:" in out

    def test_exit_zero_on_clean_file(self, clean_file: Path, capsys):
        assert lint_main([str(clean_file)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_format(self, violation_file: Path, capsys):
        assert lint_main([str(violation_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["ok"] is False
        assert payload["findings"][0]["rule_id"] == "REP101"

    def test_rule_selection(self, violation_file: Path, capsys):
        assert lint_main([str(violation_file), "--rules", "no-print"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP101", "REP108"):
            assert rule_id in out

    def test_unknown_rule_exits_two(self, clean_file: Path, capsys):
        assert lint_main([str(clean_file), "--rules", "bogus"]) == 2
        capsys.readouterr()

    def test_missing_path_exits_two(self, tmp_path: Path, capsys):
        assert lint_main([str(tmp_path / "nope.py")]) == 2
        capsys.readouterr()


class TestReproCliIntegration:
    def test_repro_lint_subcommand(self, violation_file: Path, capsys):
        assert repro_main(["lint", str(violation_file)]) == 1
        assert "REP101" in capsys.readouterr().out

    def test_repro_lint_clean(self, clean_file: Path, capsys):
        assert repro_main(["lint", str(clean_file)]) == 0
        capsys.readouterr()


class TestShippedTreeIsClean:
    def test_src_repro_has_no_findings(self, capsys):
        """The acceptance gate: the shipped library lints clean."""
        package_root = Path(repro.__file__).parent
        report = lint_paths([package_root])
        assert report.ok, "\n".join(str(f) for f in report.findings)
        assert report.files_checked > 50
