"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.task import TaskChain
from repro.core.types import Resources


@pytest.fixture
def simple_chain() -> TaskChain:
    """Four tasks, one sequential, with distinct big/little weights."""
    return TaskChain.from_weights(
        weights_big=[4, 10, 3, 7],
        weights_little=[9, 21, 8, 15],
        replicable=[True, True, False, True],
    )


@pytest.fixture
def simple_profile(simple_chain: TaskChain) -> ChainProfile:
    return ChainProfile(simple_chain)


@pytest.fixture
def balanced_resources() -> Resources:
    return Resources(big=2, little=2)


def random_instance(rng: np.random.Generator, max_tasks: int = 8, max_cores: int = 4):
    """Draw a random small scheduling instance (chain, resources)."""
    n = int(rng.integers(1, max_tasks + 1))
    wb = rng.integers(1, 40, n).astype(float)
    wl = np.ceil(wb * rng.uniform(1.0, 5.0, n))
    rep = rng.random(n) < rng.random()
    chain = TaskChain.from_weights(wb, wl, rep)
    big = int(rng.integers(0, max_cores + 1))
    little = int(rng.integers(0, max_cores + 1))
    if big + little == 0:
        little = 1
    return chain, Resources(big, little)
