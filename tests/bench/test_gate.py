"""Unit tests for the perf gate's core-gated scaling checks.

A speedup assertion judged on a single-core runner measures scheduler
noise, not scaling; ``Check.requires_cores`` makes the gate skip such
checks explicitly — visible in the rendered output — instead of letting
them pass vacuously.  Checks without the field judge exactly as before.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.gate import (
    Check,
    evaluate,
    load_tolerances,
    render_results,
)
from repro.core.errors import InvalidParameterError


def _reports(affinity):
    baseline = {
        "machine": {"cpu_affinity": 8},
        "jobs_scaling": {"python": {"jobs4": {"speedup": 3.4}}},
    }
    candidate = {
        "machine": {"cpu_affinity": affinity},
        "jobs_scaling": {"python": {"jobs4": {"speedup": 0.9}}},
    }
    return baseline, candidate


_SCALING = Check(
    metric="jobs_scaling.python.jobs4.speedup",
    kind="higher_better",
    min_factor=0.5,
    requires_cores=4,
)


class TestRequiresCores:
    def test_skipped_below_core_floor(self):
        baseline, candidate = _reports(affinity=1)
        (result,) = evaluate(baseline, candidate, (_SCALING,))
        assert result.passed
        assert "skipped" in result.detail
        assert "requires 4" in result.detail
        assert "skipped" in render_results((result,))

    def test_judged_at_or_above_core_floor(self):
        baseline, candidate = _reports(affinity=4)
        (result,) = evaluate(baseline, candidate, (_SCALING,))
        assert not result.passed  # 0.9 < 3.4 * 0.5: a real verdict, not a skip
        assert "skipped" not in result.detail

    def test_missing_affinity_treated_as_one_core(self):
        baseline, candidate = _reports(affinity=None)
        del candidate["machine"]["cpu_affinity"]
        (result,) = evaluate(baseline, candidate, (_SCALING,))
        assert result.passed
        assert "1 usable core" in result.detail

    def test_flag_checks_can_be_core_gated_too(self):
        check = Check(
            metric="jobs_scaling.mismatch", kind="flag_false", requires_cores=2
        )
        candidate = {"machine": {"cpu_affinity": 1}, "jobs_scaling": {"mismatch": True}}
        (result,) = evaluate({}, candidate, (check,))
        assert result.passed and "skipped" in result.detail

    def test_invalid_requires_cores_rejected(self):
        with pytest.raises(InvalidParameterError):
            Check(
                metric="x", kind="higher_better", min_factor=1.0,
                requires_cores=0,
            )


class TestToleranceParsing:
    def test_requires_cores_round_trips(self, tmp_path):
        path = tmp_path / "tolerances.json"
        path.write_text(
            json.dumps(
                {
                    "checks": [
                        {"metric": "a", "kind": "flag_false"},
                        {
                            "metric": "b.speedup",
                            "kind": "higher_better",
                            "min_factor": 0.5,
                            "requires_cores": 2,
                        },
                    ]
                }
            )
        )
        plain, gated = load_tolerances(path)
        assert plain.requires_cores is None
        assert gated.requires_cores == 2

    def test_shipped_tolerances_parse(self):
        from pathlib import Path

        shipped = (
            Path(__file__).resolve().parents[2] / "benchmarks" / "tolerances.json"
        )
        checks = load_tolerances(shipped)
        gated = [c for c in checks if c.requires_cores is not None]
        assert any(
            c.metric == "jobs_scaling.python.jobs4.speedup"
            and c.requires_cores == 4
            for c in gated
        )
        assert any(
            c.metric == "speedup_vs_serial.process_jobs2"
            and c.requires_cores == 2
            for c in gated
        )
