"""Tests for the functional transceiver (end-to-end link)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.herad import herad
from repro.core.types import Resources
from repro.sdr.transceiver import (
    FramePayload,
    FunctionalTransceiver,
    TransceiverConfig,
)
from repro.streampu.runtime import PipelineRuntime


@pytest.fixture(scope="module")
def trx():
    return FunctionalTransceiver(TransceiverConfig(snr_db=9.0))


class TestConfig:
    def test_odd_ldpc_rejected(self):
        with pytest.raises(ValueError):
            FunctionalTransceiver(TransceiverConfig(ldpc_n=255))

    def test_too_small_ldpc_rejected(self):
        with pytest.raises(ValueError):
            FunctionalTransceiver(TransceiverConfig(ldpc_n=64, bch_m=7))

    def test_frame_dimensioning(self, trx):
        assert trx.bch_blocks == trx.ldpc.k // trx.bch.n
        assert trx.frame_bits == trx.bch_blocks * trx.bch.k


class TestLoopback:
    def test_error_free_zone(self, trx):
        for frame in range(6):
            payload = trx.run_frame(frame)
            assert payload.bit_errors == 0, f"frame {frame}"
            assert payload.ldpc_iterations <= 3
            assert payload.bch_corrections == 0

    def test_messages_differ_per_frame(self, trx):
        a = trx.random_message(0)
        b = trx.random_message(1)
        assert (a != b).any()
        np.testing.assert_array_equal(a, trx.random_message(0))

    def test_transmit_validates_message(self, trx):
        with pytest.raises(ValueError):
            trx.transmit(np.zeros(trx.frame_bits + 1, dtype=np.uint8))

    def test_fec_repairs_low_snr_errors(self):
        """At lower SNR the codes visibly work: LDPC iterates and/or BCH
        corrects, and most frames still come out clean."""
        trx = FunctionalTransceiver(
            TransceiverConfig(snr_db=7.0, frequency_offset=0.001, seed=3)
        )
        clean = 0
        effort = 0
        for frame in range(8):
            payload = trx.run_frame(frame)
            clean += payload.bit_errors == 0
            effort += payload.ldpc_iterations + payload.bch_corrections
        assert clean >= 4  # most frames still repaired near the waterfall
        assert effort > 10  # decoding genuinely worked for its money

    def test_monitor_reports_channel_breakdown(self):
        trx = FunctionalTransceiver(
            TransceiverConfig(snr_db=-5.0, frequency_offset=0.0)
        )
        payload = trx.run_frame(0)
        assert payload.bit_errors > 0


class TestSchedulingIntegration:
    def test_receiver_chain_matches_tasks(self, trx):
        chain = trx.receiver_chain()
        tasks = trx.receiver_tasks()
        assert chain.n == len(tasks) == 17
        # Names align index-by-index between the schedulable chain and the
        # executable tasks (the chain prefixes each with its tau id).
        for task, executor in zip(chain, tasks):
            assert executor.name in task.name

    def test_runs_under_computed_schedule(self, trx):
        chain = trx.receiver_chain()
        outcome = herad(chain, Resources(4, 2))
        runtime = PipelineRuntime.from_solution(
            outcome.solution, chain, executors=trx.receiver_tasks()
        )
        result = runtime.run(
            num_frames=8, payload_factory=lambda i: FramePayload(index=i)
        )
        for payload in result.payloads:
            assert isinstance(payload, FramePayload)
            assert payload.bit_errors == 0
        # Frames come out in order despite replicated stages.
        assert [p.index for p in result.payloads] == list(range(8))

    def test_sequential_radio_stage_not_replicated(self, trx):
        chain = trx.receiver_chain()
        outcome = herad(chain, Resources(6, 4))
        first_stage = outcome.solution[0]
        if first_stage.start == 0 and not first_stage.is_replicable(chain):
            assert first_stage.cores == 1
