"""Tests for the GF(2^m) arithmetic and the BCH codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sdr.bch import BchCodec
from repro.sdr.galois import GaloisField


class TestGaloisField:
    @pytest.fixture(scope="class")
    def gf16(self):
        return GaloisField(4)

    def test_size(self, gf16):
        assert gf16.size == 16

    def test_add_is_xor(self, gf16):
        assert gf16.add(0b1010, 0b0110) == 0b1100

    def test_multiplicative_group(self, gf16):
        # alpha generates all non-zero elements.
        elements = {gf16.pow_alpha(i) for i in range(15)}
        assert elements == set(range(1, 16))

    def test_mul_inverse(self, gf16):
        for a in range(1, 16):
            assert gf16.mul(a, gf16.inv(a)) == 1

    def test_mul_commutative_associative(self, gf16):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b, c = rng.integers(0, 16, 3)
            assert gf16.mul(a, b) == gf16.mul(b, a)
            assert gf16.mul(gf16.mul(a, b), c) == gf16.mul(a, gf16.mul(b, c))

    def test_distributive(self, gf16):
        rng = np.random.default_rng(1)
        for _ in range(50):
            a, b, c = rng.integers(0, 16, 3)
            assert gf16.mul(a, b ^ c) == gf16.mul(a, b) ^ gf16.mul(a, c)

    def test_zero_division(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.inv(0)
        with pytest.raises(ValueError):
            gf16.log_alpha(0)

    def test_non_primitive_poly_rejected(self):
        # x^4 + 1 is not primitive.
        with pytest.raises(ValueError):
            GaloisField(4, primitive_poly=0b10001)

    def test_unknown_degree_needs_poly(self):
        with pytest.raises(ValueError):
            GaloisField(11)

    def test_minimal_polynomial_annihilates(self, gf16):
        for element in (2, 3, 7):
            poly = gf16.minimal_polynomial(element)
            assert gf16.poly_eval(poly, element) == 0
            assert all(c in (0, 1) for c in poly)

    def test_bch_generator_roots(self, gf16):
        gen = gf16.bch_generator(t=2)
        # g(alpha^i) = 0 for i = 1..2t.
        for i in range(1, 5):
            assert gf16.poly_eval(gen, gf16.pow_alpha(i)) == 0


class TestBchCodec:
    @pytest.fixture(scope="class")
    def codec(self):
        return BchCodec(m=5, t=2)

    def test_dimensions(self, codec):
        assert codec.n == 31
        assert codec.k == 21

    def test_encode_is_systematic(self, codec):
        rng = np.random.default_rng(2)
        msg = rng.integers(0, 2, codec.k).astype(np.uint8)
        codeword = codec.encode(msg)
        np.testing.assert_array_equal(codeword[codec.n - codec.k :], msg)

    def test_codewords_have_zero_syndromes(self, codec):
        rng = np.random.default_rng(3)
        for _ in range(10):
            cw = codec.encode(rng.integers(0, 2, codec.k).astype(np.uint8))
            assert not any(codec.syndromes(cw))

    def test_error_free_roundtrip(self, codec):
        rng = np.random.default_rng(4)
        msg = rng.integers(0, 2, codec.k).astype(np.uint8)
        decoded, corrected = codec.decode(codec.encode(msg))
        assert corrected == 0
        np.testing.assert_array_equal(decoded, msg)

    @pytest.mark.parametrize("errors", [1, 2])
    def test_corrects_up_to_t(self, codec, errors):
        rng = np.random.default_rng(5 + errors)
        for _ in range(20):
            msg = rng.integers(0, 2, codec.k).astype(np.uint8)
            cw = codec.encode(msg)
            positions = rng.choice(codec.n, errors, replace=False)
            cw[positions] ^= 1
            decoded, corrected = codec.decode(cw)
            assert corrected == errors
            np.testing.assert_array_equal(decoded, msg)

    def test_detects_overload(self, codec):
        """With more than t errors the decoder reports failure (or worse,
        miscorrects to another codeword — it must never crash)."""
        rng = np.random.default_rng(9)
        failures = 0
        for _ in range(30):
            msg = rng.integers(0, 2, codec.k).astype(np.uint8)
            cw = codec.encode(msg)
            positions = rng.choice(codec.n, 5, replace=False)
            cw[positions] ^= 1
            _, corrected = codec.decode(cw)
            if corrected == -1:
                failures += 1
        assert failures > 0  # most 5-error patterns are detected

    def test_input_validation(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.zeros(codec.k - 1, dtype=np.uint8))
        with pytest.raises(ValueError):
            codec.encode(np.full(codec.k, 2, dtype=np.uint8))
        with pytest.raises(ValueError):
            codec.decode(np.zeros(codec.n + 1, dtype=np.uint8))

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, data):
        codec = BchCodec(m=4, t=1)
        bits = data.draw(
            st.lists(st.integers(0, 1), min_size=codec.k, max_size=codec.k)
        )
        errors = data.draw(st.integers(0, 1))
        position = data.draw(st.integers(0, codec.n - 1))
        msg = np.array(bits, dtype=np.uint8)
        cw = codec.encode(msg)
        if errors:
            cw[position] ^= 1
        decoded, corrected = codec.decode(cw)
        assert corrected == errors
        np.testing.assert_array_equal(decoded, msg)
