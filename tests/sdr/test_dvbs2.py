"""Tests for repro.sdr.dvbs2 (the Table III dataset and chain builders)."""

from __future__ import annotations

import pytest

from repro.core.types import CoreType
from repro.platform.model import Platform
from repro.platform.presets import MAC_STUDIO, X7_TI
from repro.core.types import Resources
from repro.sdr.dvbs2 import (
    DVBS2_TASK_TABLE,
    SLOWEST_REPLICABLE,
    SLOWEST_SEQUENTIAL,
    dvbs2_chain,
    dvbs2_mac_studio_chain,
    dvbs2_x7ti_chain,
)


class TestDataset:
    def test_23_tasks(self):
        assert len(DVBS2_TASK_TABLE) == 23
        assert [r.index for r in DVBS2_TASK_TABLE] == list(range(1, 24))

    def test_totals_match_paper(self):
        assert sum(r.mac_big for r in DVBS2_TASK_TABLE) == pytest.approx(8530.8, abs=0.5)
        assert sum(r.mac_little for r in DVBS2_TASK_TABLE) == pytest.approx(19841.3, abs=0.5)
        assert sum(r.x7_big for r in DVBS2_TASK_TABLE) == pytest.approx(12592.5, abs=0.5)
        assert sum(r.x7_little for r in DVBS2_TASK_TABLE) == pytest.approx(22530.7, abs=0.5)

    def test_replicable_split(self):
        replicable = [r.index for r in DVBS2_TASK_TABLE if r.replicable]
        assert replicable == [11, 13, 14, 15, 16, 17, 18, 19, 20, 23]

    def test_little_always_slower(self):
        for r in DVBS2_TASK_TABLE:
            assert r.mac_little > r.mac_big
            # On the X7 Ti little cores are slower too (tau_1 is nearly equal).
            assert r.x7_little >= r.x7_big

    def test_slowest_highlights(self):
        seq = [r for r in DVBS2_TASK_TABLE if not r.replicable]
        seq.sort(key=lambda r: r.mac_big, reverse=True)
        assert tuple(r.index for r in seq[:2]) == SLOWEST_SEQUENTIAL
        rep = [r for r in DVBS2_TASK_TABLE if r.replicable]
        rep.sort(key=lambda r: r.mac_big, reverse=True)
        assert tuple(r.index for r in rep[:2]) == SLOWEST_REPLICABLE


class TestChainBuilders:
    def test_mac_chain_weights(self):
        chain = dvbs2_mac_studio_chain()
        assert chain.n == 23
        assert chain.weights(CoreType.BIG)[0] == 52.3
        assert chain.weights(CoreType.LITTLE)[18] == 7303.5

    def test_x7_chain_weights(self):
        chain = dvbs2_x7ti_chain()
        assert chain.weights(CoreType.BIG)[18] == 6209.0

    def test_replicability_preserved(self):
        chain = dvbs2_mac_studio_chain()
        assert [t.replicable for t in chain] == [
            r.replicable for r in DVBS2_TASK_TABLE
        ]

    def test_half_core_platform_shares_profile(self):
        half = MAC_STUDIO.halved()
        assert dvbs2_chain(half).weights(CoreType.BIG) == dvbs2_chain(
            MAC_STUDIO
        ).weights(CoreType.BIG)

    def test_unknown_platform_rejected(self):
        rogue = Platform("Raspberry Pi", Resources(2, 2))
        with pytest.raises(ValueError, match="no DVB-S2 profile"):
            dvbs2_chain(rogue)

    def test_platform_dispatch(self):
        assert dvbs2_chain(X7_TI).weights(CoreType.BIG)[0] == 131.7
