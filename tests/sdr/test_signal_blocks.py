"""Tests for scramblers, modem, filters, and PL framing/sync blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sdr.filters import MatchedFilter, PulseShaper, rrc_taps, split_filter
from repro.sdr.modem import AwgnChannel, QpskModem, estimate_noise_sigma
from repro.sdr.plframe import (
    PlFramer,
    apply_frequency_offset,
    correlate_frame_start,
    decision_directed_phase_track,
    estimate_frequency_offset,
)
from repro.sdr.scrambler import BinaryScrambler, SymbolScrambler


class TestScramblers:
    def test_binary_scramble_is_involution(self):
        scrambler = BinaryScrambler(max_bits=512)
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 300).astype(np.uint8)
        scrambled = scrambler.scramble(bits)
        assert (scrambled != bits).any()  # actually does something
        np.testing.assert_array_equal(scrambler.descramble(scrambled), bits)

    def test_binary_keystream_is_balanced(self):
        scrambler = BinaryScrambler(max_bits=4096)
        zeros = scrambler.scramble(np.zeros(4096, dtype=np.uint8))
        assert 0.4 < zeros.mean() < 0.6

    def test_binary_frame_too_long(self):
        scrambler = BinaryScrambler(max_bits=8)
        with pytest.raises(ValueError):
            scrambler.scramble(np.zeros(9, dtype=np.uint8))

    def test_zero_register_rejected(self):
        with pytest.raises(ValueError):
            BinaryScrambler(seed_register=0)

    def test_symbol_scramble_roundtrip(self):
        scrambler = SymbolScrambler(max_symbols=128)
        rng = np.random.default_rng(1)
        symbols = np.exp(1j * rng.uniform(0, 2 * np.pi, 100))
        np.testing.assert_allclose(
            scrambler.descramble(scrambler.scramble(symbols)), symbols
        )

    def test_symbol_scramble_preserves_magnitude(self):
        scrambler = SymbolScrambler(max_symbols=64)
        symbols = np.ones(64, dtype=complex)
        np.testing.assert_allclose(
            np.abs(scrambler.scramble(symbols)), np.ones(64)
        )


class TestModem:
    def test_modulate_unit_energy(self):
        modem = QpskModem()
        symbols = modem.modulate(np.array([0, 0, 0, 1, 1, 0, 1, 1], dtype=np.uint8))
        np.testing.assert_allclose(np.abs(symbols), np.ones(4))

    def test_hard_roundtrip(self):
        modem = QpskModem()
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 200).astype(np.uint8)
        np.testing.assert_array_equal(
            modem.demodulate_hard(modem.modulate(bits)), bits
        )

    def test_soft_signs_match_hard(self):
        modem = QpskModem()
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        llr = modem.demodulate_soft(modem.modulate(bits), noise_sigma=0.3)
        np.testing.assert_array_equal((llr < 0).astype(np.uint8), bits)

    def test_odd_bits_rejected(self):
        with pytest.raises(ValueError):
            QpskModem().modulate(np.array([1, 0, 1], dtype=np.uint8))

    def test_bad_sigma_rejected(self):
        with pytest.raises(ValueError):
            QpskModem().demodulate_soft(np.ones(4, dtype=complex), 0.0)

    def test_awgn_statistics(self):
        channel = AwgnChannel(snr_db=10.0, seed=4)
        tx = np.ones(20000, dtype=complex)
        noise = channel.transmit(tx) - tx
        measured = np.concatenate([noise.real, noise.imag]).std()
        assert measured == pytest.approx(channel.sigma, rel=0.05)

    def test_noise_estimator_tracks_sigma(self):
        modem = QpskModem()
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, 4000).astype(np.uint8)
        channel = AwgnChannel(snr_db=12.0, seed=6)
        rx = channel.transmit(modem.modulate(bits))
        estimate = estimate_noise_sigma(rx)
        assert estimate == pytest.approx(channel.sigma, rel=0.25)

    def test_noise_estimator_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_noise_sigma(np.array([], dtype=complex))


class TestFilters:
    def test_rrc_unit_energy(self):
        taps = rrc_taps(4, 8, 0.35)
        assert np.sum(taps**2) == pytest.approx(1.0)

    def test_rrc_symmetric(self):
        taps = rrc_taps(4, 8, 0.25)
        np.testing.assert_allclose(taps, taps[::-1], atol=1e-12)

    def test_rrc_validation(self):
        with pytest.raises(ValueError):
            rrc_taps(0)
        with pytest.raises(ValueError):
            rrc_taps(4, 8, 0.0)

    def test_shape_filter_downsample_roundtrip(self):
        shaper = PulseShaper(4)
        matched = MatchedFilter(4)
        rng = np.random.default_rng(7)
        symbols = np.exp(1j * (np.pi / 2 * rng.integers(0, 4, 64) + np.pi / 4))
        recovered = matched.downsample(
            matched.filter(shaper.shape(symbols)), symbols.size
        )
        # RRC + matched RRC is (approximately) Nyquist: low ISI.
        error = np.abs(recovered - symbols)
        assert error.max() < 0.1

    def test_downsample_needs_enough_samples(self):
        matched = MatchedFilter(4)
        with pytest.raises(ValueError):
            matched.downsample(np.zeros(10, dtype=complex), 100)

    def test_split_filter_structure(self):
        taps = rrc_taps(2, 4)
        first, second = split_filter(taps)
        np.testing.assert_array_equal(first, taps)
        assert second[0] == 1.0 and not second[1:].any()


class TestPlFraming:
    def test_header_roundtrip(self):
        framer = PlFramer(header_symbols=16)
        payload = np.arange(10, dtype=complex)
        framed = framer.add_header(payload)
        assert framed.size == 26
        np.testing.assert_array_equal(framer.remove_header(framed), payload)

    def test_short_frame_rejected(self):
        framer = PlFramer(header_symbols=16)
        with pytest.raises(ValueError):
            framer.remove_header(np.zeros(8, dtype=complex))
        with pytest.raises(ValueError):
            PlFramer(header_symbols=2)

    def test_frame_sync_finds_offset(self):
        framer = PlFramer(header_symbols=20)
        rng = np.random.default_rng(8)
        payload = np.exp(1j * rng.uniform(0, 2 * np.pi, 50))
        stream = np.concatenate(
            [
                0.05 * rng.standard_normal(13) + 0j,
                framer.add_header(payload),
            ]
        )
        _, start = correlate_frame_start(stream, framer.header)
        assert start == 13

    def test_frame_sync_window_validated(self):
        framer = PlFramer(header_symbols=20)
        with pytest.raises(ValueError):
            correlate_frame_start(np.zeros(5, dtype=complex), framer.header)

    def test_frequency_offset_roundtrip(self):
        rng = np.random.default_rng(9)
        symbols = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        shifted = apply_frequency_offset(symbols, 0.01)
        restored = apply_frequency_offset(shifted, -0.01)
        np.testing.assert_allclose(restored, symbols, atol=1e-12)

    def test_frequency_estimator_accuracy(self):
        framer = PlFramer(header_symbols=26)
        true_offset = 0.004
        received = apply_frequency_offset(framer.header, true_offset)
        estimate = estimate_frequency_offset(received, framer.header)
        assert estimate == pytest.approx(true_offset, abs=5e-4)

    def test_frequency_estimator_validation(self):
        framer = PlFramer()
        with pytest.raises(ValueError):
            estimate_frequency_offset(framer.header[:-1], framer.header)
        with pytest.raises(ValueError):
            estimate_frequency_offset(
                np.ones(1, dtype=complex), np.ones(1, dtype=complex)
            )

    def test_phase_tracker_removes_residual_rotation(self):
        rng = np.random.default_rng(10)
        qpsk = np.exp(1j * (np.pi / 2 * rng.integers(0, 4, 256) + np.pi / 4))
        rotated = apply_frequency_offset(qpsk, 0.0015)
        tracked = decision_directed_phase_track(rotated)
        # After convergence the symbols sit near the pi/4 grid again.
        tail = tracked[64:]
        angles = np.angle(tail)
        grid_error = np.abs(
            angles - (np.pi / 2 * np.round((angles - np.pi / 4) / (np.pi / 2)) + np.pi / 4)
        )
        assert np.median(grid_error) < 0.15
