"""Tests for repro.sdr.framing (throughput conversions)."""

from __future__ import annotations

import pytest

from repro.sdr.framing import (
    DVBS2_NORMAL_R8_9,
    FrameFormat,
    fps_from_period_us,
    mbps_from_fps,
)


def test_paper_frame_format():
    assert DVBS2_NORMAL_R8_9.info_bits == 14232
    assert DVBS2_NORMAL_R8_9.ldpc_rate == "8/9"
    assert DVBS2_NORMAL_R8_9.modcod == 2


def test_fps_matches_table2_s1():
    # S1: 1128.7 us with interframe 4 -> 3544 FPS.
    assert fps_from_period_us(1128.7, 4) == pytest.approx(3544, abs=1)


def test_fps_matches_table2_s11():
    # S11: 2722.1 us with interframe 8 -> 2939 FPS.
    assert fps_from_period_us(2722.1, 8) == pytest.approx(2939, abs=1)


def test_mbps_matches_table2_s1():
    fps = fps_from_period_us(1128.7, 4)
    assert mbps_from_fps(fps) == pytest.approx(50.4, abs=0.1)


def test_mbps_matches_table2_s16():
    fps = fps_from_period_us(1341.9, 8)
    assert mbps_from_fps(fps) == pytest.approx(84.8, abs=0.1)


def test_invalid_period_rejected():
    with pytest.raises(ValueError):
        fps_from_period_us(0.0, 4)
    with pytest.raises(ValueError):
        fps_from_period_us(-5.0, 4)


def test_invalid_interframe_rejected():
    with pytest.raises(ValueError):
        fps_from_period_us(100.0, 0)


def test_custom_frame_format():
    fmt = FrameFormat(name="toy", info_bits=1000)
    assert fmt.throughput_mbps(500.0) == pytest.approx(0.5)


def test_frame_format_validates_bits():
    with pytest.raises(ValueError):
        FrameFormat(name="bad", info_bits=0)
