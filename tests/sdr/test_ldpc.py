"""Tests for the LDPC code and its normalized min-sum decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sdr.ldpc import LdpcCode, _gaussian_elimination_gf2


class TestConstruction:
    def test_dimensions(self):
        code = LdpcCode(n=128, rate=0.5)
        assert code.n == 128
        assert 0 < code.k <= 64 + 8  # rank deficiencies only help k

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            LdpcCode(n=64, rate=1.5)
        with pytest.raises(ValueError):
            LdpcCode(n=8)

    def test_parity_matrix_column_weight(self):
        code = LdpcCode(n=96, rate=0.5, column_weight=3)
        assert (code.h.sum(axis=0) == 3).all()

    def test_gaussian_elimination_identity_block(self):
        rng = np.random.default_rng(0)
        h = rng.integers(0, 2, (10, 30)).astype(np.uint8)
        reduced, perm = _gaussian_elimination_gf2(h)
        rank = reduced.shape[0]
        np.testing.assert_array_equal(
            reduced[:, :rank], np.eye(rank, dtype=np.uint8)
        )
        # Permutation is a bijection.
        assert sorted(perm.tolist()) == list(range(30))


class TestEncoding:
    @pytest.fixture(scope="class")
    def code(self):
        return LdpcCode(n=128, rate=0.5)

    def test_encodings_are_codewords(self, code):
        rng = np.random.default_rng(1)
        for _ in range(10):
            cw = code.encode(rng.integers(0, 2, code.k).astype(np.uint8))
            assert code.is_codeword(cw)

    def test_message_extraction(self, code):
        rng = np.random.default_rng(2)
        msg = rng.integers(0, 2, code.k).astype(np.uint8)
        np.testing.assert_array_equal(
            code.extract_message(code.encode(msg)), msg
        )

    def test_linear_code(self, code):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2, code.k).astype(np.uint8)
        b = rng.integers(0, 2, code.k).astype(np.uint8)
        np.testing.assert_array_equal(
            code.encode(a) ^ code.encode(b), code.encode(a ^ b)
        )

    def test_size_validated(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(code.k + 1, dtype=np.uint8))


class TestDecoding:
    @pytest.fixture(scope="class")
    def code(self):
        return LdpcCode(n=128, rate=0.5)

    def noisy_llr(self, code, cw, sigma, rng):
        tx = 1.0 - 2.0 * cw.astype(float)
        rx = tx + rng.normal(0.0, sigma, code.n)
        return 2.0 * rx / sigma**2

    def test_noiseless_decodes_first_iteration(self, code):
        rng = np.random.default_rng(4)
        cw = code.encode(rng.integers(0, 2, code.k).astype(np.uint8))
        llr = 10.0 * (1.0 - 2.0 * cw.astype(float))
        bits, iterations = code.decode(llr)
        assert iterations == 1
        np.testing.assert_array_equal(bits, cw)

    def test_decodes_at_moderate_noise(self, code):
        rng = np.random.default_rng(5)
        successes = 0
        for _ in range(15):
            cw = code.encode(rng.integers(0, 2, code.k).astype(np.uint8))
            bits, _ = code.decode(
                self.noisy_llr(code, cw, 0.45, rng), max_iterations=20
            )
            successes += (bits == cw).all()
        assert successes >= 13

    def test_early_stop_reports_iterations(self, code):
        rng = np.random.default_rng(6)
        cw = code.encode(rng.integers(0, 2, code.k).astype(np.uint8))
        _, iterations = code.decode(
            self.noisy_llr(code, cw, 0.3, rng), max_iterations=10
        )
        assert 1 <= iterations <= 10

    def test_nonconvergence_flagged(self, code):
        rng = np.random.default_rng(7)
        # Pure noise cannot satisfy the checks.
        llr = rng.normal(0.0, 1.0, code.n)
        _, iterations = code.decode(llr, max_iterations=5)
        assert iterations == 6

    def test_llr_size_validated(self, code):
        with pytest.raises(ValueError):
            code.decode(np.zeros(code.n - 1))

    def test_decoder_beats_hard_slicing(self, code):
        """The whole point of soft decoding: fewer errors than sign(LLR)."""
        rng = np.random.default_rng(8)
        soft_errors = 0
        hard_errors = 0
        for _ in range(10):
            cw = code.encode(rng.integers(0, 2, code.k).astype(np.uint8))
            llr = self.noisy_llr(code, cw, 0.55, rng)
            hard = (llr < 0).astype(np.uint8)
            decoded, _ = code.decode(llr, max_iterations=20)
            hard_errors += int((hard != cw).sum())
            soft_errors += int((decoded != cw).sum())
        assert soft_errors < hard_errors
