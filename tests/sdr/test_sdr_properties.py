"""Property-based tests (hypothesis) over the SDR signal blocks."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sdr.bch import BchCodec
from repro.sdr.ldpc import LdpcCode
from repro.sdr.modem import QpskModem
from repro.sdr.plframe import apply_frequency_offset
from repro.sdr.scrambler import BinaryScrambler, SymbolScrambler

_BCH = BchCodec(m=5, t=2)
_LDPC = LdpcCode(n=96, rate=0.5)
_SCRAMBLER = BinaryScrambler(max_bits=2048)
_SYMBOL_SCRAMBLER = SymbolScrambler(max_symbols=1024)
_MODEM = QpskModem()


@given(st.lists(st.integers(0, 1), min_size=1, max_size=512))
@settings(max_examples=50, deadline=None)
def test_binary_scrambler_involution(bits):
    data = np.array(bits, dtype=np.uint8)
    np.testing.assert_array_equal(
        _SCRAMBLER.descramble(_SCRAMBLER.scramble(data)), data
    )


@given(
    st.lists(
        st.floats(-3.0, 3.0, allow_nan=False), min_size=2, max_size=256
    ).filter(lambda xs: len(xs) % 2 == 0)
)
@settings(max_examples=50, deadline=None)
def test_symbol_scrambler_roundtrip(values):
    symbols = np.array(values[0::2]) + 1j * np.array(values[1::2])
    out = _SYMBOL_SCRAMBLER.descramble(_SYMBOL_SCRAMBLER.scramble(symbols))
    np.testing.assert_allclose(out, symbols, atol=1e-12)


@given(st.lists(st.integers(0, 1), min_size=2, max_size=300).filter(lambda b: len(b) % 2 == 0))
@settings(max_examples=50, deadline=None)
def test_qpsk_hard_roundtrip(bits):
    data = np.array(bits, dtype=np.uint8)
    np.testing.assert_array_equal(
        _MODEM.demodulate_hard(_MODEM.modulate(data)), data
    )


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_bch_corrects_any_t_error_pattern(data):
    msg = np.array(
        data.draw(
            st.lists(st.integers(0, 1), min_size=_BCH.k, max_size=_BCH.k)
        ),
        dtype=np.uint8,
    )
    num_errors = data.draw(st.integers(0, _BCH.t))
    positions = data.draw(
        st.lists(
            st.integers(0, _BCH.n - 1),
            min_size=num_errors,
            max_size=num_errors,
            unique=True,
        )
    )
    codeword = _BCH.encode(msg)
    for pos in positions:
        codeword[pos] ^= 1
    decoded, corrected = _BCH.decode(codeword)
    assert corrected == num_errors
    np.testing.assert_array_equal(decoded, msg)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_ldpc_encode_extract_roundtrip(data):
    msg = np.array(
        data.draw(
            st.lists(st.integers(0, 1), min_size=_LDPC.k, max_size=_LDPC.k)
        ),
        dtype=np.uint8,
    )
    codeword = _LDPC.encode(msg)
    assert _LDPC.is_codeword(codeword)
    np.testing.assert_array_equal(_LDPC.extract_message(codeword), msg)


@given(
    st.floats(-0.02, 0.02, allow_nan=False),
    st.floats(0.0, 6.0, allow_nan=False),
    st.integers(2, 128),
)
@settings(max_examples=50, deadline=None)
def test_frequency_offset_invertible(offset, phase, n):
    rng = np.random.default_rng(abs(int(phase * 1000)) + n)
    symbols = np.exp(1j * rng.uniform(0, 2 * np.pi, n))
    rotated = apply_frequency_offset(symbols, offset, phase)
    restored = apply_frequency_offset(rotated, -offset, -phase)
    # Rotations are applied as exp(j(2 pi f n + phase)); composing with the
    # negated parameters cancels both terms exactly.
    np.testing.assert_allclose(restored, symbols, atol=1e-10)


@given(st.integers(0, 2**15 - 1))
@settings(max_examples=30, deadline=None)
def test_binary_scrambler_any_nonzero_seed(seed_register):
    if seed_register == 0:
        return
    scrambler = BinaryScrambler(max_bits=128, seed_register=seed_register)
    bits = np.arange(128, dtype=np.uint8) % 2
    np.testing.assert_array_equal(
        scrambler.descramble(scrambler.scramble(bits)), bits
    )
