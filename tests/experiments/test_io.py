"""Tests for repro.experiments.io (JSON round-tripping of results)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solution import Solution
from repro.core.stage import Stage
from repro.core.types import CoreType, Resources
from repro.experiments import table3
from repro.experiments.common import run_campaign
from repro.experiments.io import load_json, result_to_dict, save_json


class TestResultToDict:
    def test_scalars(self):
        assert result_to_dict(5) == 5
        assert result_to_dict(2.5) == 2.5
        assert result_to_dict("x") == "x"
        assert result_to_dict(True) is True
        assert result_to_dict(None) is None

    def test_non_finite_floats_stringified(self):
        assert result_to_dict(float("inf")) == "inf"
        assert result_to_dict(float("nan")) == "nan"

    def test_numpy(self):
        assert result_to_dict(np.int64(3)) == 3
        assert result_to_dict(np.float64(1.5)) == 1.5
        assert result_to_dict(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_domain_types(self):
        assert result_to_dict(CoreType.BIG) == "BIG"
        assert result_to_dict(Resources(2, 3)) == {"big": 2, "little": 3}
        stage = Stage(0, 2, 2, CoreType.LITTLE)
        assert result_to_dict(stage) == {
            "start": 0,
            "end": 2,
            "cores": 2,
            "core_type": "LITTLE",
        }
        sol = Solution([stage])
        assert result_to_dict(sol) == {"stages": [result_to_dict(stage)]}

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            result_to_dict(object())


class TestRoundTrip:
    def test_campaign_roundtrip(self, tmp_path):
        campaign = run_campaign(
            Resources(2, 2), 0.5, num_chains=3, num_tasks=6
        )
        path = save_json(campaign, tmp_path / "campaign.json")
        data = load_json(path)
        assert data["__type__"] == "CampaignResult"
        assert data["resources"] == {"big": 2, "little": 2}
        assert len(data["records"]["herad"]["periods"]) == 3

    def test_table3_roundtrip(self, tmp_path):
        result = table3.run()
        data = load_json(save_json(result, tmp_path / "t3.json"))
        assert data["__type__"] == "Table3Result"
        assert data["paper_totals"][0] == pytest.approx(8530.8)
        assert data["totals"][0] == pytest.approx(result.totals[0])

    def test_nested_dirs_created(self, tmp_path):
        path = save_json({"a": 1}, tmp_path / "deep" / "dir" / "x.json")
        assert path.exists()
