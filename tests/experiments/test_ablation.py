"""Tests for the ablation experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments import ablation


@pytest.fixture(scope="module")
def result():
    return ablation.run(
        num_chains=6,
        stateless_ratios=(0.5,),
        dynamic_overheads=(0.0, 200.0),
    )


def test_replication_always_helps(result):
    for ratio in result.replication_value.values():
        assert ratio >= 1.0


def test_memoization_equivalence(result):
    _, _, equal = result.memoization
    assert equal


def test_dynamic_crossover(result):
    assert result.dynamic_periods[0.0] <= result.static_period * 1.02
    assert result.dynamic_periods[200.0] > result.static_period


def test_placement_compact_at_least_as_good(result):
    assert (
        result.placement_periods["compact"]
        <= result.placement_periods["scatter"] + 1e-9
    )


def test_render_mentions_all_sections(result):
    text = ablation.render(result)
    for needle in ("Ablation 1", "Ablation 2", "Ablation 3", "Ablation 4"):
        assert needle in text


def test_cli_integration(capsys):
    from repro.cli import main

    assert main(["ablation", "--chains", "4"]) == 0
    out = capsys.readouterr().out
    assert "value of replication" in out
