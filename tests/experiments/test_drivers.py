"""Smoke and shape tests for every experiment driver (small scales)."""

from __future__ import annotations

import pytest

from repro.core.types import Resources
from repro.experiments import fig1, fig2, fig3, fig4, fig5, fig6, table1, table2, table3
from repro.platform.presets import MAC_STUDIO


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(
            num_chains=12,
            budgets=[Resources(4, 4)],
            stateless_ratios=[0.5],
        )

    def test_structure(self, result):
        assert len(result.scenarios) == 1
        stats = result.scenarios[0].stats
        assert set(stats) >= {"herad", "2catac", "fertac", "otac_b", "otac_l"}
        assert stats["herad"].percent_optimal == 100.0

    def test_render(self, result):
        text = table1.render(result)
        assert "HeRAD" in text and "OTAC (L)" in text
        assert "paper period stats" in text
        assert "paper period stats" not in table1.render(
            result, include_paper=False
        )


class TestFig1:
    def test_run_and_render(self):
        result = fig1.run(
            num_chains=10,
            budgets=[Resources(10, 10)],
            stateless_ratios=[0.5],
        )
        assert len(result.scenarios) == 1
        cdfs = result.scenarios[0].cdfs
        assert cdfs["herad"].fraction_optimal == pytest.approx(1.0)
        text = fig1.render(result)
        assert "Fig. 1a" in text and "Fig. 1b" in text


class TestFig2:
    def test_run_and_render(self):
        result = fig2.run(num_chains=15, resources=Resources(4, 4))
        assert result.all_results.num_chains == 15
        # Fig. 2b population-denominator: shares never exceed 2a shares.
        assert result.optimal_only.share_within_extra_cores(
            10
        ) <= result.all_results.share_within_extra_cores(10) + 1e-9
        text = fig2.render(result)
        assert "paper: 59.0%" in text


class TestFig3And4:
    def test_fig3_small(self):
        result = fig3.run(
            task_counts=[6, 8],
            budgets=[Resources(3, 3)],
            stateless_ratios=[0.5],
            strategies=["fertac", "herad"],
            num_chains=2,
        )
        assert len(result.points) == 4
        assert "Fig. 3" in fig3.render(result)

    def test_fig3_caps_exponential_strategies(self):
        result = fig3.run(
            task_counts=[6, 100],
            budgets=[Resources(2, 2)],
            stateless_ratios=[0.5],
            strategies=["2catac"],
            num_chains=1,
            caps={"2catac": 10},
        )
        assert [p.num_tasks for p in result.points] == [6]

    def test_fig4_small(self):
        result = fig4.run(
            budgets=[Resources(2, 2), Resources(4, 4)],
            num_tasks=6,
            stateless_ratios=[0.5],
            strategies=["fertac"],
            num_chains=2,
        )
        assert len(result.points) == 2
        assert "Fig. 4" in fig4.render(result)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(
            configurations=[(MAC_STUDIO, Resources(8, 2))],
            strategies=["herad", "otac_l"],
            num_frames=400,
        )

    def test_rows(self, result):
        assert len(result.rows) == 2
        herad_row = result.rows[0]
        assert herad_row.period_us == pytest.approx(1128.75, abs=0.1)
        assert herad_row.sim_mbps == pytest.approx(50.4, abs=0.2)
        # The calibrated runtime is slower than the model, never faster.
        assert herad_row.real_mbps < herad_row.sim_mbps

    def test_render(self, result):
        text = table2.render(result)
        assert "Mac Studio" in text
        assert "(8B, 2L)" in text
        assert "paper period" in text


class TestTable3:
    def test_totals_match(self):
        result = table3.run()
        assert result.totals_match
        text = table3.render(result)
        assert "match" in text
        assert "tau_19" in text

    def test_profiler_demo(self):
        rows = table3.profile_chain_executors(time_scale=1e-7, repetitions=1)
        assert len(rows) == 23
        for _, nominal, measured in rows:
            assert measured >= 0.0
            assert nominal > 0.0


class TestFig5And6:
    def test_fig5_render(self):
        result = fig5.run(
            configurations=[(MAC_STUDIO, Resources(8, 2))],
            strategies=["herad", "otac_l"],
            num_frames=300,
        )
        text = fig5.render(result)
        assert "Fig. 5" in text
        assert "#" in text

    def test_fig6_summary(self):
        t2 = table2.run(
            configurations=[(MAC_STUDIO, Resources(8, 2))],
            strategies=["herad", "fertac"],
            num_frames=300,
        )
        result = fig6.run(
            num_chains=6,
            budgets=[Resources(3, 3)],
            stateless_ratios=[0.5],
            table2=t2,
            strategies=["herad", "fertac"],
        )
        assert len(result.rows) == 2
        herad_row = next(r for r in result.rows if r.strategy == "herad")
        assert herad_row.avg_slowdown == pytest.approx(1.0)
        assert "Fig. 6" in fig6.render(result)
