"""Tests for repro.experiments.compare (paper-vs-reproduction deltas)."""

from __future__ import annotations

import pytest

from repro.core.types import Resources
from repro.experiments import table1, table2
from repro.experiments.compare import (
    compare_table1,
    compare_table2,
    summarize_table2,
)
from repro.platform.presets import MAC_STUDIO


class TestCompareTable1:
    def test_matches_paper_cells(self):
        result = table1.run(
            num_chains=10,
            budgets=[Resources(10, 10)],
            stateless_ratios=[0.5],
        )
        rows = compare_table1(result)
        # One row per paper strategy in the matched scenario.
        assert len(rows) == 5
        herad = next(r for r in rows if r.strategy == "herad")
        assert herad.percent_optimal == 100.0
        assert herad.paper_percent_optimal == 100.0
        assert herad.percent_optimal_delta == 0.0
        assert herad.avg_slowdown_delta == pytest.approx(0.0)

    def test_unmatched_scenarios_skipped(self):
        result = table1.run(
            num_chains=5,
            budgets=[Resources(7, 3)],  # not a paper budget
            stateless_ratios=[0.5],
        )
        assert compare_table1(result) == []


class TestCompareTable2:
    @pytest.fixture(scope="class")
    def comparisons(self):
        result = table2.run(
            configurations=[(MAC_STUDIO, Resources(8, 2))],
            num_frames=400,
        )
        return compare_table2(result)

    def test_all_strategies_matched(self, comparisons):
        assert len(comparisons) == 5

    def test_periods_reproduce(self, comparisons):
        for comparison in comparisons:
            assert comparison.period_matches, comparison.strategy

    def test_summary_text(self, comparisons):
        text = summarize_table2(comparisons)
        assert "5/5" in text
        assert "%" in text

    def test_empty_summary(self):
        assert summarize_table2([]) == "no comparable rows"
