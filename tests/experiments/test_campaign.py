"""Tests for repro.experiments.common (campaigns and timing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import Resources
from repro.experiments.common import run_campaign, time_strategy


class TestRunCampaign:
    def test_records_all_paper_strategies(self):
        campaign = run_campaign(Resources(3, 3), 0.5, num_chains=5, num_tasks=8)
        assert set(campaign.records) == {
            "herad",
            "2catac",
            "fertac",
            "otac_b",
            "otac_l",
        }
        for rec in campaign.records.values():
            assert rec.periods.shape == (5,)
            assert rec.big_used.shape == (5,)

    def test_herad_always_included(self):
        campaign = run_campaign(
            Resources(2, 2), 0.5, num_chains=3, num_tasks=6,
            strategies=["fertac"],
        )
        assert "herad" in campaign.records
        assert "fertac" in campaign.records

    def test_herad_is_lower_envelope(self):
        campaign = run_campaign(Resources(3, 3), 0.5, num_chains=8, num_tasks=8)
        opt = campaign.optimal_periods
        for name, rec in campaign.records.items():
            assert (rec.periods >= opt - 1e-9).all(), name

    def test_deterministic_by_seed(self):
        a = run_campaign(Resources(2, 2), 0.5, num_chains=4, num_tasks=6, seed=5)
        b = run_campaign(Resources(2, 2), 0.5, num_chains=4, num_tasks=6, seed=5)
        np.testing.assert_array_equal(
            a.records["fertac"].periods, b.records["fertac"].periods
        )

    def test_usage_within_budget(self):
        resources = Resources(3, 2)
        campaign = run_campaign(resources, 0.5, num_chains=6, num_tasks=8)
        for rec in campaign.records.values():
            assert (rec.big_used <= resources.big).all()
            assert (rec.little_used <= resources.little).all()


class TestTimeStrategy:
    def test_returns_positive_times(self):
        point = time_strategy(
            "fertac", Resources(4, 4), 0.5, num_tasks=10, num_chains=3
        )
        assert point.mean_seconds > 0
        assert point.mean_microseconds == pytest.approx(
            point.mean_seconds * 1e6
        )
        assert point.strategy == "fertac"
        assert point.num_tasks == 10

    def test_resolves_aliases(self):
        point = time_strategy(
            "OTAC (B)", Resources(4, 0), 0.5, num_tasks=8, num_chains=2
        )
        assert point.strategy == "otac_b"
