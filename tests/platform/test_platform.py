"""Tests for repro.platform (models and presets)."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidPlatformError
from repro.core.types import CoreType, Resources
from repro.platform.model import Platform
from repro.platform.presets import (
    MAC_STUDIO,
    REAL_CONFIGURATIONS,
    SIMULATION_BUDGETS,
    X7_TI,
    simulation_platform,
)


class TestPlatform:
    def test_shortcuts(self):
        p = Platform("p", Resources(2, 3))
        assert p.big == 2
        assert p.little == 3

    def test_needs_cores(self):
        with pytest.raises(InvalidPlatformError):
            Platform("p", Resources(0, 0))

    def test_interframe_validated(self):
        with pytest.raises(InvalidPlatformError):
            Platform("p", Resources(1, 1), interframe=0)

    def test_halved(self):
        half = MAC_STUDIO.halved()
        assert (half.big, half.little) == (8, 2)
        assert half.interframe == MAC_STUDIO.interframe
        assert "half" in half.name

    def test_halved_keeps_nonempty_pools(self):
        p = Platform("p", Resources(1, 1)).halved()
        assert (p.big, p.little) == (1, 1)

    def test_halved_zero_pool_stays_zero(self):
        p = Platform("p", Resources(4, 0)).halved()
        assert (p.big, p.little) == (2, 0)

    def test_with_resources(self):
        p = MAC_STUDIO.with_resources(8, 2)
        assert (p.big, p.little) == (8, 2)
        assert p.name == MAC_STUDIO.name

    def test_frequency(self):
        assert MAC_STUDIO.frequency(CoreType.BIG) == 3.2
        assert MAC_STUDIO.frequency(CoreType.LITTLE) == 2.0


class TestPresets:
    def test_mac_studio_matches_paper(self):
        assert (MAC_STUDIO.big, MAC_STUDIO.little) == (16, 4)
        assert MAC_STUDIO.interframe == 4

    def test_x7ti_matches_paper(self):
        assert (X7_TI.big, X7_TI.little) == (6, 8)
        assert X7_TI.interframe == 8

    def test_simulation_budgets(self):
        assert SIMULATION_BUDGETS == (
            Resources(16, 4),
            Resources(10, 10),
            Resources(4, 16),
        )

    def test_real_configurations_are_all_and_half(self):
        budgets = [r for _, r in REAL_CONFIGURATIONS]
        assert budgets == [
            Resources(8, 2),
            Resources(16, 4),
            Resources(3, 4),
            Resources(6, 8),
        ]

    def test_simulation_platform_builder(self):
        p = simulation_platform(4, 16)
        assert (p.big, p.little) == (4, 16)
        assert p.interframe == 1
