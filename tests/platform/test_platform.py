"""Tests for repro.platform (models and presets)."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidPlatformError
from repro.core.types import CoreType, Resources
from repro.platform.model import CoreClass, Platform
from repro.platform.presets import (
    MAC_STUDIO,
    REAL_CONFIGURATIONS,
    SIMULATION_BUDGETS,
    X7_TI,
    X7_TI_3T,
    ktype_simulation_platform,
    simulation_platform,
)


class TestPlatform:
    def test_shortcuts(self):
        p = Platform("p", Resources(2, 3))
        assert p.big == 2
        assert p.little == 3

    def test_needs_cores(self):
        with pytest.raises(InvalidPlatformError):
            Platform("p", Resources(0, 0))

    def test_interframe_validated(self):
        with pytest.raises(InvalidPlatformError):
            Platform("p", Resources(1, 1), interframe=0)

    def test_halved(self):
        half = MAC_STUDIO.halved()
        assert (half.big, half.little) == (8, 2)
        assert half.interframe == MAC_STUDIO.interframe
        assert "half" in half.name

    def test_halved_keeps_nonempty_pools(self):
        p = Platform("p", Resources(1, 1)).halved()
        assert (p.big, p.little) == (1, 1)

    def test_halved_zero_pool_stays_zero(self):
        p = Platform("p", Resources(4, 0)).halved()
        assert (p.big, p.little) == (2, 0)

    def test_with_resources(self):
        p = MAC_STUDIO.with_resources(8, 2)
        assert (p.big, p.little) == (8, 2)
        assert p.name == MAC_STUDIO.name

    def test_frequency(self):
        assert MAC_STUDIO.frequency(CoreType.BIG) == 3.2
        assert MAC_STUDIO.frequency(CoreType.LITTLE) == 2.0


class TestKTypePlatform:
    def _p3(self):
        return Platform.from_core_classes(
            "p3",
            (
                CoreClass("P", 4, 5.0),
                CoreClass("E", 6, 3.0),
                CoreClass("LPE", 2, 1.5),
            ),
            interframe=2,
        )

    def test_from_core_classes(self):
        p = self._p3()
        assert p.ktype == 3
        assert p.resources.counts == (4, 6, 2)
        assert p.big == 4 and p.little == 6
        assert p.big_frequency_ghz == 5.0
        assert p.little_frequency_ghz == 3.0
        assert p.interframe == 2

    def test_class_name_and_frequency_by_index(self):
        p = self._p3()
        assert [p.class_name(v) for v in range(3)] == ["P", "E", "LPE"]
        assert p.frequency(2) == 1.5
        # Derived names when no class metadata was given.
        bare = Platform("bare", Resources(2, 3))
        assert bare.class_name(0) == "big"
        assert bare.class_name(1) == "little"
        with pytest.raises(InvalidPlatformError):
            bare.class_name(2)

    def test_classes_must_agree_with_budget(self):
        with pytest.raises(InvalidPlatformError):
            Platform(
                "p",
                Resources(2, 2),
                core_classes=(CoreClass("P", 2), CoreClass("E", 3)),
            )

    def test_empty_class_list_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform.from_core_classes("p", ())

    def test_negative_class_count_rejected(self):
        with pytest.raises(InvalidPlatformError):
            CoreClass("P", -1)

    def test_halved_halves_every_class(self):
        half = self._p3().halved()
        assert half.resources.counts == (2, 3, 1)
        assert [cls.count for cls in half.core_classes] == [2, 3, 1]
        assert [cls.name for cls in half.core_classes] == ["P", "E", "LPE"]

    def test_with_counts(self):
        p = self._p3().with_counts((1, 1, 1))
        assert p.resources.counts == (1, 1, 1)
        assert p.core_classes == ()  # stale class metadata is dropped

    def test_str_matches_two_type_rendering(self):
        assert str(Platform("p", Resources(2, 3))) == "p R=(2B, 3L)"
        assert str(self._p3()) == "p3 R=(4B, 6L, 2T2)"


class TestPresets:
    def test_mac_studio_matches_paper(self):
        assert (MAC_STUDIO.big, MAC_STUDIO.little) == (16, 4)
        assert MAC_STUDIO.interframe == 4

    def test_x7ti_matches_paper(self):
        assert (X7_TI.big, X7_TI.little) == (6, 8)
        assert X7_TI.interframe == 8

    def test_simulation_budgets(self):
        assert SIMULATION_BUDGETS == (
            Resources(16, 4),
            Resources(10, 10),
            Resources(4, 16),
        )

    def test_real_configurations_are_all_and_half(self):
        budgets = [r for _, r in REAL_CONFIGURATIONS]
        assert budgets == [
            Resources(8, 2),
            Resources(16, 4),
            Resources(3, 4),
            Resources(6, 8),
        ]

    def test_simulation_platform_builder(self):
        p = simulation_platform(4, 16)
        assert (p.big, p.little) == (4, 16)
        assert p.interframe == 1

    def test_x7ti_3t_extends_the_paper_preset(self):
        assert X7_TI_3T.ktype == 3
        # Same P/E pools as the paper's X7 Ti, plus the two LPE cores the
        # paper leaves unused.
        assert X7_TI_3T.resources.counts == (6, 8, 2)
        assert X7_TI_3T.interframe == X7_TI.interframe
        assert X7_TI_3T.frequency(0) == X7_TI.big_frequency_ghz
        assert X7_TI_3T.frequency(1) == X7_TI.little_frequency_ghz
        assert X7_TI_3T.class_name(2) == "LPE-core"

    def test_ktype_simulation_platform_builder(self):
        p = ktype_simulation_platform((3, 3, 2))
        assert p.resources.counts == (3, 3, 2)
        assert p.ktype == 3
        assert "(3B, 3L, 2T2)" in p.name
