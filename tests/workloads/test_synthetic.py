"""Tests for repro.workloads.synthetic (the paper's chain distribution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidChainError
from repro.core.types import CoreType
from repro.workloads.synthetic import (
    DEFAULT_CONFIG,
    GeneratorConfig,
    chain_batch,
    random_chain,
)


class TestGeneratorConfig:
    def test_defaults_match_paper(self):
        assert DEFAULT_CONFIG.num_tasks == 20
        assert DEFAULT_CONFIG.weight_low == 1
        assert DEFAULT_CONFIG.weight_high == 100
        assert DEFAULT_CONFIG.slowdown_low == 1.0
        assert DEFAULT_CONFIG.slowdown_high == 5.0

    @pytest.mark.parametrize("sr,expected", [(0.2, 4), (0.5, 10), (0.8, 16)])
    def test_num_replicable(self, sr, expected):
        config = GeneratorConfig(stateless_ratio=sr)
        assert config.num_replicable == expected

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_tasks": 0},
            {"weight_low": 0},
            {"weight_low": 10, "weight_high": 5},
            {"slowdown_low": 0.5},
            {"slowdown_low": 3.0, "slowdown_high": 2.0},
            {"stateless_ratio": 1.5},
            {"stateless_ratio": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(InvalidChainError):
            GeneratorConfig(**kwargs)


class TestRandomChain:
    def test_shape_and_ranges(self):
        rng = np.random.default_rng(0)
        config = GeneratorConfig(stateless_ratio=0.5)
        for _ in range(20):
            chain = random_chain(rng, config)
            assert chain.n == 20
            for task in chain:
                assert 1 <= task.weight_big <= 100
                assert task.weight_big == int(task.weight_big)
                # ceil(w * slowdown) with slowdown in [1, 5].
                assert task.weight_big <= task.weight_little <= 5 * task.weight_big
                assert task.weight_little == int(task.weight_little)

    def test_exact_replicable_count(self):
        rng = np.random.default_rng(1)
        for sr in (0.2, 0.5, 0.8):
            chain = random_chain(rng, GeneratorConfig(stateless_ratio=sr))
            assert len(chain.replicable_indices) == round(sr * 20)

    def test_little_weights_use_ceiling(self):
        rng = np.random.default_rng(2)
        chain = random_chain(rng)
        for task in chain:
            assert float(task.weight_little).is_integer()

    def test_replicable_positions_vary(self):
        rng = np.random.default_rng(3)
        config = GeneratorConfig(stateless_ratio=0.5)
        positions = {
            tuple(random_chain(rng, config).replicable_indices)
            for _ in range(10)
        }
        assert len(positions) > 1


class TestChainBatch:
    def test_deterministic_for_seed(self):
        a = [c.weights(CoreType.BIG) for c in chain_batch(5, seed=42)]
        b = [c.weights(CoreType.BIG) for c in chain_batch(5, seed=42)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [c.weights(CoreType.BIG) for c in chain_batch(5, seed=1)]
        b = [c.weights(CoreType.BIG) for c in chain_batch(5, seed=2)]
        assert a != b

    def test_count(self):
        assert len(list(chain_batch(7))) == 7
        assert list(chain_batch(0)) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            list(chain_batch(-1))

    def test_chains_within_batch_differ(self):
        chains = list(chain_batch(5, seed=0))
        weights = {tuple(c.weights(CoreType.BIG)) for c in chains}
        assert len(weights) == 5
