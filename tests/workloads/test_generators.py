"""Tests for repro.workloads.generators (structured chain shapes)."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidChainError
from repro.core.types import CoreType
from repro.workloads.generators import (
    alternating_chain,
    fully_replicable_chain,
    fully_sequential_chain,
    heavy_tail_chain,
    inverted_speed_chain,
    uniform_chain,
)


def test_uniform_chain_stateless_split():
    chain = uniform_chain(10, stateless_ratio=0.6)
    assert len(chain.replicable_indices) == 6
    # Sequential tasks come first by construction.
    assert chain.sequential_indices == [0, 1, 2, 3]


def test_fully_replicable():
    chain = fully_replicable_chain(5)
    assert chain.is_fully_replicable()


def test_fully_sequential():
    chain = fully_sequential_chain(5)
    assert chain.replicable_indices == []


def test_alternating_pattern():
    chain = alternating_chain(6)
    assert chain.replicable_indices == [0, 2, 4]


def test_heavy_tail_dominant_task():
    chain = heavy_tail_chain(6, factor=50.0)
    weights = chain.weights(CoreType.BIG)
    assert max(weights) == 50.0
    assert weights.index(50.0) == 5
    assert not chain[0].replicable  # one sequential anchor kept


def test_heavy_tail_custom_index():
    chain = heavy_tail_chain(6, heavy_index=2)
    assert chain.weights(CoreType.BIG)[2] == 50.0


def test_heavy_tail_bad_index():
    with pytest.raises(InvalidChainError):
        heavy_tail_chain(4, heavy_index=9)


def test_inverted_speeds():
    chain = inverted_speed_chain(8)
    for task in chain:
        assert task.weight_little < task.weight_big
    assert any(t.replicable for t in chain)


@pytest.mark.parametrize(
    "factory",
    [
        uniform_chain,
        fully_replicable_chain,
        fully_sequential_chain,
        alternating_chain,
        heavy_tail_chain,
        inverted_speed_chain,
    ],
)
def test_zero_length_rejected(factory):
    with pytest.raises(InvalidChainError):
        factory(0)
