"""Tests for overhead models and throughput metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import CoreType
from repro.streampu.metrics import ThroughputReport, steady_state_period
from repro.streampu.overheads import (
    CalibratedOverhead,
    ConstantSyncOverhead,
    NoOverhead,
)


class TestOverheadModels:
    def args(self, **kw):
        base = dict(
            base_latency=100.0,
            stage_index=0,
            num_stages=3,
            replicas=1,
            core_type=CoreType.BIG,
            frame=0,
        )
        base.update(kw)
        return base

    def test_no_overhead_identity(self):
        assert NoOverhead().effective_latency(**self.args()) == 100.0

    def test_constant_sync_adds(self):
        model = ConstantSyncOverhead(cost=3.0)
        assert model.effective_latency(**self.args()) == 103.0

    def test_constant_sync_validates(self):
        with pytest.raises(ValueError):
            ConstantSyncOverhead(cost=-1.0)

    def test_calibrated_base_fraction(self):
        model = CalibratedOverhead(
            sync_fraction=0.05, little_replication_penalty=0.1, jitter_fraction=0.0
        )
        assert model.effective_latency(**self.args()) == pytest.approx(105.0)

    def test_calibrated_little_replication_penalty(self):
        model = CalibratedOverhead(
            sync_fraction=0.05, little_replication_penalty=0.1, jitter_fraction=0.0
        )
        big_rep = model.effective_latency(
            **self.args(replicas=4, core_type=CoreType.BIG)
        )
        little_rep = model.effective_latency(
            **self.args(replicas=4, core_type=CoreType.LITTLE)
        )
        little_solo = model.effective_latency(
            **self.args(replicas=1, core_type=CoreType.LITTLE)
        )
        assert little_rep == pytest.approx(115.0)
        assert big_rep == pytest.approx(105.0)
        assert little_solo == pytest.approx(105.0)

    def test_jitter_is_deterministic(self):
        a = CalibratedOverhead(seed=1)
        b = CalibratedOverhead(seed=1)
        for frame in range(10):
            assert a.effective_latency(
                **self.args(frame=frame)
            ) == b.effective_latency(**self.args(frame=frame))

    def test_jitter_mean_preserving_scale(self):
        model = CalibratedOverhead(
            sync_fraction=0.0, little_replication_penalty=0.0, jitter_fraction=0.05
        )
        values = [
            model.effective_latency(**self.args(frame=f)) for f in range(500)
        ]
        assert 95.0 <= float(np.mean(values)) <= 105.0
        assert min(values) >= 95.0 - 1e-9
        assert max(values) <= 105.0 + 1e-9

    def test_negative_fractions_rejected(self):
        with pytest.raises(ValueError):
            CalibratedOverhead(sync_fraction=-0.1)


class TestSteadyStatePeriod:
    def test_exact_periodic(self):
        times = np.arange(1, 101, dtype=float) * 2.5
        assert steady_state_period(times) == pytest.approx(2.5)

    def test_warmup_excluded(self):
        # Slow fill then steady state at 1.0.
        times = np.concatenate([np.array([50.0]), 50.0 + np.arange(1, 100)])
        assert steady_state_period(times, warmup_fraction=0.3) == pytest.approx(1.0)

    def test_validates_input(self):
        with pytest.raises(ValueError):
            steady_state_period(np.array([1.0]))
        with pytest.raises(ValueError):
            steady_state_period(np.arange(10.0), warmup_fraction=1.0)


class TestThroughputReport:
    def report(self, measured=200.0):
        return ThroughputReport(
            analytic_period=180.0,
            measured_period=measured,
            num_frames=100,
            makespan=20000.0,
            fill_latency=500.0,
        )

    def test_efficiency(self):
        assert self.report().efficiency == pytest.approx(0.9)
        assert self.report(measured=0.0).efficiency == 0.0

    def test_fps_microsecond_unit(self):
        # 200 us period, interframe 4 -> 20000 FPS.
        assert self.report().fps(interframe=4) == pytest.approx(20000.0)

    def test_fps_generic_unit(self):
        assert self.report().fps(time_unit_us=False) == pytest.approx(1 / 200.0)

    def test_mbps(self):
        # 20000 FPS * 14232 bits = 284.64 Mb/s.
        assert self.report().mbps(14232, interframe=4) == pytest.approx(284.64)
