"""Tests for repro.streampu.channels (OrderedChannel adaptors)."""

from __future__ import annotations

import threading

import pytest

from repro.streampu.channels import ChannelClosedError, Frame, OrderedChannel


class TestBasics:
    def test_in_order_delivery(self):
        ch = OrderedChannel(capacity=8)
        for i in (2, 0, 1):
            ch.put(Frame(i, f"p{i}"))
        assert [ch.get().index for _ in range(3)] == [0, 1, 2]

    def test_payloads_preserved(self):
        ch = OrderedChannel(capacity=4)
        ch.put(Frame(0, {"x": 1}))
        assert ch.get().payload == {"x": 1}

    def test_close_then_none(self):
        ch = OrderedChannel(capacity=4)
        ch.put(Frame(0, None))
        ch.close()
        assert ch.get().index == 0
        assert ch.get() is None
        assert ch.get() is None  # idempotent

    def test_put_after_close_raises(self):
        ch = OrderedChannel(capacity=4)
        ch.close()
        with pytest.raises(ChannelClosedError):
            ch.put(Frame(0, None))

    def test_len_reports_buffered(self):
        ch = OrderedChannel(capacity=4)
        ch.put(Frame(1, None))
        assert len(ch) == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            OrderedChannel(capacity=0)

    def test_get_timeout(self):
        ch = OrderedChannel(capacity=4)
        with pytest.raises(TimeoutError):
            ch.get(timeout=0.01)

    def test_put_window_timeout(self):
        ch = OrderedChannel(capacity=1)
        ch.put(Frame(0, None))
        with pytest.raises(TimeoutError):
            ch.put(Frame(1, None), timeout=0.01)


class TestFlowControlWindow:
    def test_expected_frame_always_admissible(self):
        """Index-window flow control: even with the buffer "full" of
        out-of-order frames, the next expected frame can enter — the
        reorder-deadlock guard."""
        ch = OrderedChannel(capacity=3)
        ch.put(Frame(1, None))
        ch.put(Frame(2, None))
        # Window is [0, 3): frame 0 must still be admissible.
        ch.put(Frame(0, None), timeout=0.1)
        assert ch.get().index == 0

    def test_window_advances_with_consumption(self):
        ch = OrderedChannel(capacity=2)
        ch.put(Frame(0, None))
        ch.put(Frame(1, None))
        assert ch.get().index == 0
        ch.put(Frame(2, None), timeout=0.1)  # window now [1, 3)


class TestThreaded:
    def test_producer_consumer(self):
        ch = OrderedChannel(capacity=4)
        received = []

        def consumer():
            while True:
                frame = ch.get(timeout=5.0)
                if frame is None:
                    return
                received.append(frame.index)

        t = threading.Thread(target=consumer)
        t.start()
        for i in range(50):
            ch.put(Frame(i, None), timeout=5.0)
        ch.close()
        t.join(timeout=5.0)
        assert received == list(range(50))

    def test_out_of_order_producers(self):
        ch = OrderedChannel(capacity=8)
        received = []
        done = threading.Event()

        def consumer():
            while True:
                frame = ch.get(timeout=5.0)
                if frame is None:
                    done.set()
                    return
                received.append(frame.index)

        threading.Thread(target=consumer).start()

        def producer(indices):
            for i in indices:
                ch.put(Frame(i, None), timeout=5.0)

        a = threading.Thread(target=producer, args=([0, 2, 4, 6, 8],))
        b = threading.Thread(target=producer, args=([1, 3, 5, 7, 9],))
        a.start(), b.start()
        a.join(timeout=5.0), b.join(timeout=5.0)
        ch.close()
        assert done.wait(timeout=5.0)
        assert received == list(range(10))


def test_frame_ordering_operator():
    assert Frame(1, None) < Frame(2, None)
    assert not Frame(3, None) < Frame(2, None)
