"""Tests for the dynamic per-task scheduling baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidPlatformError
from repro.core.herad import herad
from repro.core.task import TaskChain
from repro.core.types import Resources
from repro.streampu.dynamic import simulate_dynamic_scheduler


class TestBasics:
    def test_fully_replicable_reaches_balance(self):
        chain = TaskChain.from_weights([10] * 4, [20] * 4, [True] * 4)
        result = simulate_dynamic_scheduler(
            chain, Resources(4, 0), num_frames=200
        )
        # 40 work units / 4 cores = 10 per frame at steady state.
        assert result.measured_period == pytest.approx(10.0, rel=0.05)

    def test_sequential_task_is_the_bottleneck(self):
        chain = TaskChain.from_weights(
            [10, 30, 10], [20, 60, 20], [False, False, False]
        )
        result = simulate_dynamic_scheduler(
            chain, Resources(3, 0), num_frames=200
        )
        assert result.measured_period == pytest.approx(30.0, rel=0.05)

    def test_completions_monotone(self):
        chain = TaskChain.from_weights([5, 7], [9, 11], [False, True])
        result = simulate_dynamic_scheduler(
            chain, Resources(2, 1), num_frames=100
        )
        assert (np.diff(result.completion_times) >= -1e-9).all()

    def test_dispatch_count(self):
        chain = TaskChain.from_weights([1, 1, 1], [2, 2, 2], [True] * 3)
        result = simulate_dynamic_scheduler(
            chain, Resources(2, 0), num_frames=50
        )
        assert result.dispatches == 50 * 3

    def test_validation(self):
        chain = TaskChain.from_weights([1], [1], [True])
        with pytest.raises(InvalidPlatformError):
            simulate_dynamic_scheduler(chain, Resources(0, 0))
        with pytest.raises(ValueError):
            simulate_dynamic_scheduler(chain, Resources(1, 0), num_frames=1)
        with pytest.raises(ValueError):
            simulate_dynamic_scheduler(
                chain, Resources(1, 0), dispatch_overhead=-1.0
            )
        with pytest.raises(ValueError):
            simulate_dynamic_scheduler(chain, Resources(1, 0), window=0)


class TestOverheadCrossover:
    """The paper's related-work argument: dynamic scheduling flexes better
    than any static pipeline at zero cost, but realistic per-dispatch
    overheads at microsecond task granularity flip the comparison."""

    @pytest.fixture(scope="class")
    def instance(self):
        from repro.sdr.dvbs2 import dvbs2_mac_studio_chain

        chain = dvbs2_mac_studio_chain()
        resources = Resources(8, 2)
        static = herad(chain, resources)
        return chain, resources, static

    def test_zero_overhead_beats_or_matches_static(self, instance):
        chain, resources, static = instance
        dynamic = simulate_dynamic_scheduler(
            chain, resources, num_frames=200, dispatch_overhead=0.0
        )
        assert dynamic.measured_period <= static.period * 1.02

    def test_realistic_overhead_loses_to_static(self, instance):
        chain, resources, static = instance
        dynamic = simulate_dynamic_scheduler(
            chain, resources, num_frames=200, dispatch_overhead=100.0
        )
        assert dynamic.measured_period > static.period

    def test_overhead_monotonically_degrades(self, instance):
        chain, resources, _ = instance
        periods = [
            simulate_dynamic_scheduler(
                chain, resources, num_frames=150, dispatch_overhead=ovh
            ).measured_period
            for ovh in (0.0, 50.0, 200.0)
        ]
        assert periods[0] <= periods[1] <= periods[2]


class TestUtilization:
    def test_busy_fraction_bounded(self):
        chain = TaskChain.from_weights([10, 10], [20, 20], [True, True])
        result = simulate_dynamic_scheduler(
            chain, Resources(2, 2), num_frames=100
        )
        assert 0.0 < result.busy_fraction <= 1.0

    def test_window_limits_parallelism(self):
        chain = TaskChain.from_weights([10] * 3, [20] * 3, [True] * 3)
        narrow = simulate_dynamic_scheduler(
            chain, Resources(6, 0), num_frames=150, window=1
        )
        wide = simulate_dynamic_scheduler(
            chain, Resources(6, 0), num_frames=150, window=32
        )
        # One frame in flight serializes everything.
        assert narrow.measured_period >= wide.measured_period
        assert narrow.measured_period == pytest.approx(30.0, rel=0.05)
