"""Tests for repro.streampu.pipeline (PipelineSpec construction)."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidChainError
from repro.core.herad import herad
from repro.core.solution import Solution
from repro.core.stage import Stage
from repro.core.types import CoreType, Resources
from repro.streampu.pipeline import PipelineSpec


def test_from_solution(simple_chain, balanced_resources):
    outcome = herad(simple_chain, balanced_resources)
    spec = PipelineSpec.from_solution(outcome.solution, simple_chain)
    assert spec.num_stages == outcome.solution.num_stages
    assert spec.analytic_period == pytest.approx(outcome.period)
    assert spec.total_cores == outcome.solution.core_usage().total


def test_stage_latency_vs_weight(simple_chain):
    sol = Solution([Stage(0, 1, 2, CoreType.BIG), Stage(2, 3, 1, CoreType.LITTLE)])
    spec = PipelineSpec.from_solution(sol, simple_chain)
    first = spec.stages[0]
    assert first.latency == 14.0  # full per-frame time
    assert first.weight == 7.0  # period contribution with 2 replicas
    second = spec.stages[1]
    assert second.latency == second.weight == 23.0


def test_sequential_stage_weight_ignores_replicas(simple_chain):
    # A stage containing the sequential task keeps its full weight.
    sol = Solution([Stage(0, 2, 1, CoreType.BIG), Stage(3, 3, 2, CoreType.BIG)])
    spec = PipelineSpec.from_solution(sol, simple_chain)
    assert not spec.stages[0].replicable
    assert spec.stages[0].weight == spec.stages[0].latency


def test_rejects_partial_solution(simple_chain):
    partial = Solution([Stage(0, 1, 1, CoreType.BIG)])
    with pytest.raises(InvalidChainError):
        PipelineSpec.from_solution(partial, simple_chain)


def test_rejects_empty_solution(simple_chain):
    with pytest.raises(InvalidChainError):
        PipelineSpec.from_solution(Solution.empty(), simple_chain)


def test_queue_capacity_validated(simple_chain, balanced_resources):
    sol = herad(simple_chain, balanced_resources).solution
    with pytest.raises(InvalidChainError):
        PipelineSpec.from_solution(sol, simple_chain, queue_capacity=0)


def test_describe_lists_stages(simple_chain, balanced_resources):
    sol = herad(simple_chain, balanced_resources).solution
    text = PipelineSpec.from_solution(sol, simple_chain).describe()
    assert "analytic period" in text
    assert text.count("stage") >= sol.num_stages
