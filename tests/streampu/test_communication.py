"""Tests for the communication-cost extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.herad import herad
from repro.core.solution import Solution
from repro.core.stage import Stage
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources
from repro.streampu.communication import (
    CommunicationModel,
    boundary_costs,
    simulate_with_communication,
)
from repro.streampu.pipeline import PipelineSpec
from repro.streampu.simulator import simulate_pipeline


@pytest.fixture
def two_stage_spec():
    chain = TaskChain.from_weights([10, 10], [20, 20], [False, False])
    sol = Solution(
        [Stage(0, 0, 1, CoreType.BIG), Stage(1, 1, 1, CoreType.LITTLE)]
    )
    return PipelineSpec.from_solution(sol, chain), chain


class TestModel:
    def test_base_cost(self):
        model = CommunicationModel(base_cost=2.0)
        assert model.boundary_cost(CoreType.BIG, CoreType.BIG) == 2.0

    def test_bandwidth_term(self):
        model = CommunicationModel(bytes_per_frame=100.0, bandwidth=50.0)
        assert model.boundary_cost(CoreType.BIG, CoreType.BIG) == 2.0

    def test_cross_cluster_factor(self):
        model = CommunicationModel(base_cost=2.0, cross_cluster_factor=3.0)
        assert model.boundary_cost(CoreType.BIG, CoreType.LITTLE) == 6.0
        assert model.boundary_cost(CoreType.BIG, CoreType.BIG) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CommunicationModel(base_cost=-1.0)
        with pytest.raises(ValueError):
            CommunicationModel(cross_cluster_factor=0.5)


class TestBoundaryCosts:
    def test_per_boundary_vector(self, two_stage_spec):
        spec, _ = two_stage_spec
        model = CommunicationModel(base_cost=1.0, cross_cluster_factor=2.0)
        costs = boundary_costs(spec, model)
        # One boundary, B -> L: cross-cluster doubled.
        np.testing.assert_allclose(costs, [2.0])

    def test_single_stage_has_no_boundaries(self):
        chain = TaskChain.from_weights([5], [9], [False])
        spec = PipelineSpec.from_solution(
            Solution([Stage(0, 0, 1, CoreType.BIG)]), chain
        )
        assert boundary_costs(spec, CommunicationModel(base_cost=1.0)).size == 0


class TestSimulation:
    def test_zero_cost_matches_plain_simulator(self, two_stage_spec):
        spec, _ = two_stage_spec
        plain = simulate_pipeline(spec, num_frames=300)
        comm = simulate_with_communication(
            spec, CommunicationModel(), num_frames=300
        )
        assert comm.report.measured_period == pytest.approx(
            plain.report.measured_period
        )

    def test_transfer_adds_latency_not_period(self, two_stage_spec):
        """A transfer occupying the boundary delays frames but does not
        change the steady-state period of a compute-bound pipeline."""
        spec, _ = two_stage_spec
        model = CommunicationModel(base_cost=3.0)
        plain = simulate_pipeline(spec, num_frames=300)
        comm = simulate_with_communication(spec, model, num_frames=300)
        assert comm.report.fill_latency > plain.report.fill_latency
        assert comm.report.measured_period == pytest.approx(
            plain.report.measured_period, rel=0.02
        )

    def test_cross_type_schedules_pay_more(self):
        """Between two equal-period schedules, the one with more cross-type
        boundaries loses more latency to transfers."""
        chain = TaskChain.from_weights(
            [10, 10, 10], [10, 10, 10], [False] * 3
        )
        all_big = Solution([Stage(i, i, 1, CoreType.BIG) for i in range(3)])
        mixed = Solution(
            [
                Stage(0, 0, 1, CoreType.BIG),
                Stage(1, 1, 1, CoreType.LITTLE),
                Stage(2, 2, 1, CoreType.BIG),
            ]
        )
        model = CommunicationModel(base_cost=1.0, cross_cluster_factor=5.0)
        lat_big = simulate_with_communication(
            PipelineSpec.from_solution(all_big, chain), model, num_frames=100
        ).report.fill_latency
        lat_mixed = simulate_with_communication(
            PipelineSpec.from_solution(mixed, chain), model, num_frames=100
        ).report.fill_latency
        assert lat_mixed > lat_big

    def test_dvbs2_schedule_with_transfers(self):
        from repro.sdr.dvbs2 import dvbs2_mac_studio_chain

        chain = dvbs2_mac_studio_chain()
        outcome = herad(chain, Resources(8, 2))
        spec = PipelineSpec.from_solution(outcome.solution, chain)
        model = CommunicationModel(base_cost=5.0, cross_cluster_factor=2.0)
        result = simulate_with_communication(spec, model, num_frames=400)
        # Small per-boundary costs leave the sequential bottleneck dominant.
        assert result.report.measured_period == pytest.approx(
            outcome.period, rel=0.05
        )

    def test_frame_count_validated(self, two_stage_spec):
        spec, _ = two_stage_spec
        with pytest.raises(ValueError):
            simulate_with_communication(spec, CommunicationModel(), num_frames=1)
