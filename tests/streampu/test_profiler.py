"""Tests for repro.streampu.profiler (the profile -> schedule loop)."""

from __future__ import annotations

import pytest

from repro.core.herad import herad
from repro.core.types import CoreType, Resources
from repro.streampu.module import CallableTask, SyntheticSleepTask
from repro.streampu.profiler import profile_chain, profile_executor


class TestProfileExecutor:
    def test_measures_sleep_duration(self):
        executor = SyntheticSleepTask(weight=200.0, time_scale=1e-5)  # 2 ms
        measured = profile_executor(executor, repetitions=3, warmup=1)
        assert measured >= 0.002

    def test_repetitions_validated(self):
        with pytest.raises(ValueError):
            profile_executor(SyntheticSleepTask(weight=1.0), repetitions=0)

    def test_payload_forwarded(self):
        seen = []
        executor = CallableTask(1.0, lambda p: seen.append(p) or p)
        profile_executor(executor, payload="x", repetitions=2, warmup=1)
        assert seen == ["x", "x", "x"]


class TestProfileChain:
    def make_executors(self, weights, scale):
        return [
            SyntheticSleepTask(weight=w, time_scale=scale, name=f"t{i}")
            for i, w in enumerate(weights)
        ]

    def test_chain_reflects_speeds(self):
        # Little "cores" are 2x slower.
        big = self.make_executors([100, 200], scale=1e-5)
        little = self.make_executors([200, 400], scale=1e-5)
        chain, profiles = profile_chain(
            big, little, [True, False], repetitions=2, time_unit=1e-5
        )
        assert chain.n == 2
        assert len(profiles) == 2
        for task in chain:
            assert task.weight_little > task.weight_big
        # Sleep durations measured within ~50% of nominal.
        assert chain[0].weight(CoreType.BIG) == pytest.approx(100, rel=0.8)

    def test_profiled_chain_is_schedulable(self):
        big = self.make_executors([50, 100, 50], scale=1e-6)
        little = self.make_executors([100, 200, 100], scale=1e-6)
        chain, _ = profile_chain(
            big, little, [False, True, True], repetitions=2
        )
        outcome = herad(chain, Resources(2, 2))
        assert outcome.feasible
        assert outcome.solution.covers(chain)

    def test_length_mismatch_rejected(self):
        big = self.make_executors([1], scale=1e-9)
        with pytest.raises(ValueError):
            profile_chain(big, [], [True])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile_chain([], [], [])

    def test_replicability_passthrough(self):
        big = self.make_executors([1, 1], scale=1e-9)
        little = self.make_executors([1, 1], scale=1e-9)
        chain, profiles = profile_chain(
            big, little, [True, False], repetitions=1
        )
        assert [t.replicable for t in chain] == [True, False]
        assert [p.replicable for p in profiles] == [True, False]
