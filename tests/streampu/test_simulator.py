"""Tests for repro.streampu.simulator (discrete-event pipeline execution)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain_stats import ChainProfile
from repro.core.herad import herad
from repro.core.solution import Solution
from repro.core.stage import Stage
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources
from repro.streampu.overheads import ConstantSyncOverhead, NoOverhead
from repro.streampu.pipeline import PipelineSpec
from repro.streampu.simulator import simulate_pipeline


def spec_for(chain, resources, capacity=16):
    solution = herad(chain, resources).solution
    return PipelineSpec.from_solution(solution, chain, queue_capacity=capacity)


class TestIdealConvergence:
    def test_single_stage_single_core(self):
        chain = TaskChain.from_weights([5], [9], [False])
        spec = spec_for(chain, Resources(1, 0))
        result = simulate_pipeline(spec, num_frames=100)
        assert result.report.measured_period == pytest.approx(5.0)

    def test_converges_to_analytic_period(self, simple_chain, balanced_resources):
        spec = spec_for(simple_chain, balanced_resources)
        result = simulate_pipeline(spec, num_frames=800)
        # Replicated stages complete frames in bursts, so the endpoint
        # estimator converges at O(replicas / window).
        assert result.report.measured_period == pytest.approx(
            spec.analytic_period, rel=0.02
        )

    def test_replicated_stage_throughput(self):
        # One replicable task, 3 replicas: period = latency / 3.
        chain = TaskChain.from_weights([9], [18], [True])
        spec = spec_for(chain, Resources(3, 0))
        result = simulate_pipeline(spec, num_frames=600)
        assert result.report.measured_period == pytest.approx(3.0, rel=0.02)

    @given(
        weights=st.lists(st.integers(1, 20), min_size=1, max_size=6),
        rep=st.lists(st.booleans(), min_size=1, max_size=6),
        big=st.integers(1, 3),
        little=st.integers(0, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_ideal_simulation_matches_model(self, weights, rep, big, little):
        """Property: with no overhead, the simulator's steady-state period
        equals the schedule's analytic period (Eq. (2))."""
        n = len(weights)
        rep = (rep * n)[:n]
        chain = TaskChain.from_weights(
            weights, [w * 2 for w in weights], rep
        )
        spec = spec_for(chain, Resources(big, little))
        result = simulate_pipeline(spec, num_frames=600)
        assert result.report.measured_period == pytest.approx(
            spec.analytic_period, rel=0.02
        )


class TestSemantics:
    def test_completions_monotone_and_ordered(self, simple_chain, balanced_resources):
        spec = spec_for(simple_chain, balanced_resources)
        result = simulate_pipeline(spec, num_frames=200)
        diffs = np.diff(result.completion_times)
        assert (diffs >= -1e-12).all()

    def test_fill_latency_at_least_chain_latency(self, simple_chain, balanced_resources):
        spec = spec_for(simple_chain, balanced_resources)
        result = simulate_pipeline(spec, num_frames=50)
        total_latency = sum(s.latency for s in spec.stages)
        assert result.report.fill_latency >= total_latency - 1e-9

    def test_backpressure_slows_nothing_when_capacity_large(self):
        chain = TaskChain.from_weights([3, 7, 2], [6, 14, 4], [False] * 3)
        sol = herad(chain, Resources(3, 0)).solution
        wide = PipelineSpec.from_solution(sol, chain, queue_capacity=64)
        narrow = PipelineSpec.from_solution(sol, chain, queue_capacity=1)
        fast = simulate_pipeline(wide, num_frames=400)
        slow = simulate_pipeline(narrow, num_frames=400)
        # The bottleneck stage dominates either way in a feed-forward chain.
        assert slow.report.measured_period >= fast.report.measured_period - 1e-9

    def test_makespan_grows_with_frames(self, simple_chain, balanced_resources):
        spec = spec_for(simple_chain, balanced_resources)
        a = simulate_pipeline(spec, num_frames=50).report.makespan
        b = simulate_pipeline(spec, num_frames=100).report.makespan
        assert b > a

    def test_needs_two_frames(self, simple_chain, balanced_resources):
        spec = spec_for(simple_chain, balanced_resources)
        with pytest.raises(ValueError):
            simulate_pipeline(spec, num_frames=1)


class TestOverheads:
    def test_constant_sync_shifts_period(self):
        chain = TaskChain.from_weights([5, 5], [9, 9], [False, False])
        sol = Solution(
            [Stage(0, 0, 1, CoreType.BIG), Stage(1, 1, 1, CoreType.BIG)]
        )
        spec = PipelineSpec.from_solution(sol, chain)
        result = simulate_pipeline(
            spec, num_frames=400, overhead=ConstantSyncOverhead(cost=2.0)
        )
        assert result.report.measured_period == pytest.approx(7.0, rel=0.02)

    def test_overhead_never_speeds_up(self, simple_chain, balanced_resources):
        spec = spec_for(simple_chain, balanced_resources)
        ideal = simulate_pipeline(spec, num_frames=300, overhead=NoOverhead())
        loaded = simulate_pipeline(
            spec, num_frames=300, overhead=ConstantSyncOverhead(cost=1.0)
        )
        assert (
            loaded.report.measured_period
            >= ideal.report.measured_period - 1e-9
        )

    def test_efficiency_metric(self, simple_chain, balanced_resources):
        spec = spec_for(simple_chain, balanced_resources)
        result = simulate_pipeline(
            spec, num_frames=300, overhead=ConstantSyncOverhead(cost=1.0)
        )
        assert 0.0 < result.report.efficiency < 1.0
