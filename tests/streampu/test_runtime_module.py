"""Tests for the threaded runtime and the task executors."""

from __future__ import annotations

import time

import pytest

from repro.core.herad import herad
from repro.core.task import TaskChain
from repro.core.types import Resources
from repro.streampu.module import (
    CallableTask,
    NumpyKernelTask,
    SyntheticSleepTask,
    executors_from_weights,
)
from repro.streampu.runtime import PipelineRuntime


class TestExecutors:
    def test_sleep_task_duration(self):
        task = SyntheticSleepTask(weight=100.0, time_scale=1e-4)
        start = time.perf_counter()
        task.process(None)
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.01  # 100 * 1e-4 seconds

    def test_sleep_task_passthrough(self):
        task = SyntheticSleepTask(weight=0.0)
        assert task.process("payload") == "payload"

    def test_gemm_task_runs(self):
        task = NumpyKernelTask(weight=2.0, size=8)
        assert task.process(5) == 5

    def test_callable_task(self):
        task = CallableTask(weight=1.0, func=lambda x: x * 2)
        assert task.process(21) == 42

    def test_executors_from_weights_sleep(self):
        execs = executors_from_weights([1.0, 2.0], kind="sleep")
        assert len(execs) == 2
        assert all(isinstance(e, SyntheticSleepTask) for e in execs)

    def test_executors_from_weights_gemm(self):
        execs = executors_from_weights([1.0], kind="gemm")
        assert isinstance(execs[0], NumpyKernelTask)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            executors_from_weights([1.0], kind="quantum")


class TestPipelineRuntime:
    def chain(self) -> TaskChain:
        # Weights in "fake microseconds" — scaled to be quick under test.
        return TaskChain.from_weights(
            [50, 100, 50], [100, 200, 100], [False, True, True]
        )

    def test_runs_and_orders_frames(self):
        chain = self.chain()
        solution = herad(chain, Resources(2, 1)).solution
        runtime = PipelineRuntime.from_solution(
            chain=chain, solution=solution, time_scale=2e-6
        )
        result = runtime.run(num_frames=30)
        assert result.payloads == tuple(range(30))
        assert (result.completion_times[1:] >= result.completion_times[:-1]).all()

    def test_payload_factory_and_callables(self):
        chain = self.chain()
        solution = herad(chain, Resources(2, 1)).solution
        doublers = [
            CallableTask(weight=1.0, func=lambda x: x * 2) for _ in range(3)
        ]
        runtime = PipelineRuntime.from_solution(
            chain=chain, solution=solution, executors=doublers
        )
        result = runtime.run(num_frames=10, payload_factory=lambda i: i + 1)
        # Three doubling tasks: payload * 8.
        assert result.payloads == tuple((i + 1) * 8 for i in range(10))

    def test_measured_period_near_analytic(self):
        chain = self.chain()
        solution = herad(chain, Resources(2, 1)).solution
        runtime = PipelineRuntime.from_solution(
            chain=chain, solution=solution, time_scale=5e-5
        )
        result = runtime.run(num_frames=40)
        # Threads, sleeps and the OS add overhead, never speedup beyond
        # scheduling noise.
        assert result.report.measured_period >= 0.7 * result.report.analytic_period
        assert result.report.efficiency <= 1.3

    def test_replication_speeds_up_wall_clock(self):
        # One replicable task; 1 vs 3 workers.
        chain = TaskChain.from_weights([400], [400], [True])
        slow_sol = herad(chain, Resources(1, 0)).solution
        fast_sol = herad(chain, Resources(3, 0)).solution
        scale = 2e-5
        slow = PipelineRuntime.from_solution(slow_sol, chain, time_scale=scale)
        fast = PipelineRuntime.from_solution(fast_sol, chain, time_scale=scale)
        t_slow = slow.run(num_frames=30).report.measured_period
        t_fast = fast.run(num_frames=30).report.measured_period
        assert t_fast < t_slow / 1.5

    def test_worker_error_propagates(self):
        chain = TaskChain.from_weights([1, 1], [1, 1], [False, False])
        solution = herad(chain, Resources(2, 0)).solution

        def boom(payload):
            raise RuntimeError("kaboom")

        runtime = PipelineRuntime.from_solution(
            chain=chain,
            solution=solution,
            executors=[
                CallableTask(1.0, lambda x: x),
                CallableTask(1.0, boom),
            ],
        )
        with pytest.raises(RuntimeError, match="kaboom"):
            runtime.run(num_frames=5, timeout=5.0)

    def test_needs_two_frames(self):
        chain = self.chain()
        solution = herad(chain, Resources(2, 1)).solution
        runtime = PipelineRuntime.from_solution(chain=chain, solution=solution)
        with pytest.raises(ValueError):
            runtime.run(num_frames=1)

    def test_group_count_validated(self):
        chain = self.chain()
        solution = herad(chain, Resources(2, 1)).solution
        runtime = PipelineRuntime.from_solution(chain=chain, solution=solution)
        with pytest.raises(ValueError):
            PipelineRuntime(runtime.spec, runtime.groups[:-1])
