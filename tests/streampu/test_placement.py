"""Tests for thread-placement policies."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidPlatformError
from repro.core.herad import herad
from repro.core.solution import Solution
from repro.core.stage import Stage
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources
from repro.platform.model import Platform
from repro.streampu.pipeline import PipelineSpec
from repro.streampu.placement import (
    PlacementOverhead,
    compact_placement,
    platform_cores,
    scatter_placement,
)
from repro.streampu.simulator import simulate_pipeline


@pytest.fixture
def platform():
    return Platform("test", Resources(8, 8))


@pytest.fixture
def spec_and_chain():
    chain = TaskChain.from_weights(
        [10, 40, 10, 40], [20, 80, 20, 80], [False, True, False, True]
    )
    solution = Solution(
        [
            Stage(0, 0, 1, CoreType.BIG),
            Stage(1, 1, 4, CoreType.BIG),
            Stage(2, 2, 1, CoreType.LITTLE),
            Stage(3, 3, 4, CoreType.LITTLE),
        ]
    )
    return PipelineSpec.from_solution(solution, chain), chain


class TestPlatformCores:
    def test_counts_and_types(self, platform):
        cores = platform_cores(platform, cluster_size=4)
        assert len(cores) == 16
        assert sum(c.core_type is CoreType.BIG for c in cores) == 8
        assert [c.core_id for c in cores] == list(range(16))

    def test_clusters_never_mix_types(self, platform):
        cores = platform_cores(platform, cluster_size=4)
        by_cluster: dict[int, set] = {}
        for core in cores:
            by_cluster.setdefault(core.cluster, set()).add(core.core_type)
        for types in by_cluster.values():
            assert len(types) == 1

    def test_cluster_size_validated(self, platform):
        with pytest.raises(InvalidPlatformError):
            platform_cores(platform, cluster_size=0)


class TestPolicies:
    def test_compact_uses_adjacent_ids(self, platform, spec_and_chain):
        spec, _ = spec_and_chain
        placement = compact_placement(spec, platform_cores(platform))
        placement.validate(spec)
        big_ids = [c.core_id for c in placement.cores_of(1)]
        assert big_ids == sorted(big_ids)
        assert max(big_ids) - min(big_ids) == len(big_ids) - 1

    def test_scatter_spreads_clusters(self, platform, spec_and_chain):
        spec, _ = spec_and_chain
        cores = platform_cores(platform, cluster_size=2)
        placement = scatter_placement(spec, cores)
        placement.validate(spec)
        clusters = {c.cluster for c in placement.cores_of(1)}
        assert len(clusters) >= 2  # replicas spread across clusters

    def test_insufficient_cores_rejected(self, spec_and_chain):
        spec, _ = spec_and_chain
        small = Platform("small", Resources(2, 8))
        with pytest.raises(InvalidPlatformError):
            compact_placement(spec, platform_cores(small))

    def test_validate_catches_type_mismatch(self, platform, spec_and_chain):
        spec, _ = spec_and_chain
        placement = compact_placement(spec, platform_cores(platform))
        swapped = placement.assignments[:2] + (
            placement.assignments[3],
            placement.assignments[2],
        )
        from repro.streampu.placement import Placement

        with pytest.raises(InvalidPlatformError):
            Placement(swapped).validate(spec)

    def test_cluster_crossings_counted(self, platform, spec_and_chain):
        spec, _ = spec_and_chain
        compact = compact_placement(spec, platform_cores(platform, 4))
        scatter = scatter_placement(spec, platform_cores(platform, 2))
        assert compact.cluster_crossings() <= scatter.cluster_crossings()


class TestPlacementOverhead:
    def test_compact_beats_scatter_on_simulator(self, platform, spec_and_chain):
        spec, chain = spec_and_chain
        cores = platform_cores(platform, cluster_size=2)
        compact = PlacementOverhead(
            spec, compact_placement(spec, cores), cross_cluster_fraction=0.1
        )
        scatter = PlacementOverhead(
            spec,
            scatter_placement(spec, platform_cores(platform, 2)),
            cross_cluster_fraction=0.1,
        )
        t_compact = simulate_pipeline(
            spec, num_frames=300, overhead=compact
        ).report.measured_period
        t_scatter = simulate_pipeline(
            spec, num_frames=300, overhead=scatter
        ).report.measured_period
        assert t_compact <= t_scatter + 1e-9

    def test_zero_fraction_is_ideal(self, platform, spec_and_chain):
        spec, _ = spec_and_chain
        overhead = PlacementOverhead(
            spec,
            compact_placement(spec, platform_cores(platform)),
            cross_cluster_fraction=0.0,
        )
        ideal = simulate_pipeline(spec, num_frames=200)
        placed = simulate_pipeline(spec, num_frames=200, overhead=overhead)
        assert placed.report.measured_period == pytest.approx(
            ideal.report.measured_period
        )

    def test_negative_fraction_rejected(self, platform, spec_and_chain):
        spec, _ = spec_and_chain
        with pytest.raises(ValueError):
            PlacementOverhead(
                spec,
                compact_placement(spec, platform_cores(platform)),
                cross_cluster_fraction=-0.1,
            )

    def test_works_on_dvbs2_schedule(self):
        from repro.platform.presets import MAC_STUDIO
        from repro.sdr.dvbs2 import dvbs2_mac_studio_chain

        chain = dvbs2_mac_studio_chain()
        outcome = herad(chain, Resources(8, 2))
        spec = PipelineSpec.from_solution(outcome.solution, chain)
        cores = platform_cores(MAC_STUDIO, cluster_size=4)
        placement = compact_placement(spec, cores)
        placement.validate(spec)
        overhead = PlacementOverhead(spec, placement)
        result = simulate_pipeline(spec, num_frames=300, overhead=overhead)
        assert result.report.measured_period >= outcome.period - 1e-9