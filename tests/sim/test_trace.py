"""Tests for the trace format and generators (repro.sim.trace / .generators)."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError
from repro.engine import FaultPlan, FaultSpec
from repro.sim import (
    SimEvent,
    SimTrace,
    TRACE_FORMAT,
    bursty_trace,
    diurnal_trace,
    failure_storm_trace,
)
from repro.sim.trace import chain_from_payload, chain_to_payload
from repro.core.task import TaskChain


def _chain(name="c"):
    return TaskChain.from_weights([4, 10], [9, 21], [True, False], name=name)


class TestChainPayload:
    def test_round_trip_preserves_weights_and_flags(self):
        chain = _chain("alpha")
        back = chain_from_payload(chain_to_payload(chain))
        assert back.name == "alpha"
        assert back.ktype == chain.ktype
        for v in range(chain.ktype):
            assert [t.weight(v) for t in back.tasks] == [
                t.weight(v) for t in chain.tasks
            ]
        assert [t.replicable for t in back.tasks] == [
            t.replicable for t in chain.tasks
        ]


class TestSimTraceValidation:
    def test_rejects_empty_platform(self):
        with pytest.raises(InvalidParameterError, match="no cores"):
            SimTrace(initial_counts=(0, 0), events=())

    def test_rejects_time_regression(self):
        events = (
            SimEvent("core_failure", 5.0),
            SimEvent("core_failure", 4.0),
        )
        with pytest.raises(InvalidParameterError, match="non-decreasing"):
            SimTrace(initial_counts=(2, 2), events=events)


class TestTraceSerialization:
    def test_write_read_round_trip(self, tmp_path):
        trace = failure_storm_trace(seed=5)
        path = tmp_path / "trace.jsonl"
        trace.write(path)
        assert SimTrace.read(path) == trace

    def test_read_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "something-else/9"}\n')
        with pytest.raises(InvalidParameterError, match=TRACE_FORMAT):
            SimTrace.read(path)

    def test_torn_final_line_is_dropped(self, tmp_path):
        trace = failure_storm_trace(seed=5)
        path = tmp_path / "trace.jsonl"
        trace.write(path)
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # tear the last event line
        torn = SimTrace.read(path)
        assert torn.num_events == trace.num_events - 1
        assert torn.events == trace.events[:-1]


class TestFromFaultPlan:
    def test_timed_specs_become_platform_events(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="core_recovery", at=9.0, core_type=1, cores=2),
                FaultSpec(kind="core_failure", at=3.0, core_type=1, cores=2),
                FaultSpec(kind="raise"),  # per-cell spec: not a platform event
            ),
            state_dir=str(tmp_path),
        )
        arrivals = (SimEvent("chain_arrival", 0.0, chain=_chain("a")),)
        trace = SimTrace.from_fault_plan(plan, (2, 3), events=arrivals)
        assert [e.kind for e in trace.events] == [
            "chain_arrival",
            "core_failure",
            "core_recovery",
        ]
        assert [e.time for e in trace.events] == [0.0, 3.0, 9.0]
        assert trace.events[1].core_type == 1
        assert trace.events[1].cores == 2


class TestGenerators:
    def test_same_seed_is_bitwise_identical(self):
        assert bursty_trace(80, seed=4) == bursty_trace(80, seed=4)
        assert diurnal_trace(80, seed=4) == diurnal_trace(80, seed=4)
        assert failure_storm_trace(seed=4) == failure_storm_trace(seed=4)

    def test_different_seeds_differ(self):
        assert bursty_trace(80, seed=1) != bursty_trace(80, seed=2)

    def test_event_counts_are_exact(self):
        assert bursty_trace(123, seed=0).num_events == 123
        assert diurnal_trace(77, seed=0).num_events == 77

    def test_storm_has_three_overlapping_failures(self):
        trace = failure_storm_trace(seed=0)
        failures = [e for e in trace.events if e.kind == "core_failure"]
        recoveries = [e for e in trace.events if e.kind == "core_recovery"]
        assert len(failures) >= 3
        # All three failures land before the first recovery: they overlap.
        assert max(e.time for e in failures) < min(e.time for e in recoveries)

    def test_generators_reject_single_type_platforms(self):
        with pytest.raises(InvalidParameterError, match="two core types"):
            bursty_trace(10, initial_counts=(4,))
