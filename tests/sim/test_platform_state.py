"""Tests for the platform availability state machine (repro.sim.platform_state)."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError
from repro.sim import PlatformState


class TestFailRecover:
    def test_fail_reduces_availability(self):
        state = PlatformState((3, 3))
        assert state.fail(0, 2, time=1.0) == 2
        assert state.available_counts() == (1, 3)
        assert state.availability() == pytest.approx(4 / 6)

    def test_recover_restores(self):
        state = PlatformState((3, 3))
        state.fail(1, 3, time=1.0)
        assert state.recover(1, 2, time=5.0) == 2
        assert state.available_counts() == (3, 2)

    def test_fail_is_clamped(self):
        state = PlatformState((2, 2))
        assert state.fail(0, 5, time=0.0) == 2
        assert state.available_counts() == (0, 2)
        assert state.clamp_events == 1

    def test_recover_is_clamped(self):
        state = PlatformState((2, 2))
        state.fail(0, 1, time=0.0)
        assert state.recover(0, 5, time=1.0) == 1
        assert state.available_counts() == (2, 2)
        assert state.clamp_events == 1

    def test_whole_platform_can_go_dark(self):
        state = PlatformState((2, 1))
        state.fail(0, 2, time=0.0)
        state.fail(1, 1, time=0.0)
        assert state.available_counts() == (0, 0)
        assert state.available().total == 0

    def test_unknown_type_rejected(self):
        with pytest.raises(InvalidParameterError, match="core_type"):
            PlatformState((2, 2)).fail(5, 1, time=0.0)


class TestCoreIdentity:
    """Failures take the highest-numbered up core; recoveries revive the
    lowest-numbered down core — fixed so timelines are deterministic."""

    def test_fail_takes_highest_first(self):
        state = PlatformState((3,))
        state.fail(0, 1, time=0.0)
        assert not state.is_up(0, 2)
        assert state.is_up(0, 0) and state.is_up(0, 1)

    def test_recover_revives_lowest_first(self):
        state = PlatformState((3,))
        state.fail(0, 3, time=0.0)
        state.recover(0, 1, time=1.0)
        assert state.is_up(0, 0)
        assert not state.is_up(0, 1) and not state.is_up(0, 2)


class TestDownIntervals:
    def test_closed_and_open_intervals(self):
        state = PlatformState((2, 1))
        state.fail(0, 1, time=1.0)   # core (0,1) down
        state.recover(0, 1, time=4.0)
        state.fail(1, 1, time=2.0)   # core (1,0) still down at end
        intervals = state.down_intervals(end_time=10.0)
        assert [(d.core_type, d.core_index, d.start, d.end) for d in intervals] == [
            (0, 1, 1.0, 4.0),
            (1, 0, 2.0, 10.0),
        ]

    def test_two_identical_histories_agree(self):
        def run():
            state = PlatformState((3, 2))
            state.fail(0, 2, time=1.0)
            state.fail(1, 1, time=2.0)
            state.recover(0, 1, time=3.0)
            state.fail(0, 2, time=4.0)
            state.recover(0, 3, time=6.0)
            state.recover(1, 1, time=7.0)
            return state.down_intervals(end_time=8.0)

        assert run() == run()
