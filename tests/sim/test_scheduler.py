"""Tests for the degradation-ladder scheduler (repro.sim.scheduler)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.certify import optimality_bracket
from repro.core.chain_stats import ChainProfile
from repro.core.solution import Solution
from repro.core.types import Resources
from repro.obs.metrics import MetricsRegistry
from repro.sim import RESCHED_ACTIONS, WARM_COST, IncrementalScheduler
from repro.workloads.synthetic import GeneratorConfig, random_ktype_chain

_CONFIG = GeneratorConfig(num_tasks=8, stateless_ratio=0.5)


def _chain(seed=0, name="c"):
    rng = np.random.default_rng(seed)
    return random_ktype_chain(rng, _CONFIG, 2, name=name)


def _actions(decisions):
    return {d.name: d.action for d in decisions}


class TestRegistration:
    def test_admit_depart_mutate(self):
        sched = IncrementalScheduler()
        sched.admit(_chain(0, "a"))
        sched.admit(_chain(1, "b"))
        assert sched.chains == ("a", "b")
        sched.depart("a")
        assert sched.chains == ("b",)
        sched.mutate(_chain(2, "b"))
        assert sched.chains == ("b",)

    def test_duplicate_admit_rejected(self):
        sched = IncrementalScheduler()
        sched.admit(_chain(0, "a"))
        with pytest.raises(ValueError, match="already registered"):
            sched.admit(_chain(1, "a"))

    def test_unknown_depart_and_mutate_rejected(self):
        sched = IncrementalScheduler()
        with pytest.raises(ValueError, match="not registered"):
            sched.depart("ghost")
        with pytest.raises(ValueError, match="not registered"):
            sched.mutate(_chain(0, "ghost"))


class TestLadderRungs:
    """Each of the five rungs is reachable and reported."""

    def test_arrival_takes_full_solve(self):
        sched = IncrementalScheduler()
        sched.admit(_chain(0, "a"))
        (decision,) = sched.reschedule(Resources.from_counts((2, 2)))
        assert decision.action == "full"
        assert decision.period is not None and decision.triplets

    def test_unchanged_world_keeps(self):
        sched = IncrementalScheduler()
        sched.admit(_chain(0, "a"))
        budget = Resources.from_counts((2, 2))
        sched.reschedule(budget)
        (decision,) = sched.reschedule(budget)
        assert decision.action == "keep"
        assert decision.cost == 0.0

    def test_platform_change_warm_starts(self):
        sched = IncrementalScheduler()
        sched.admit(_chain(0, "a"))
        sched.reschedule(Resources.from_counts((3, 3)))
        (decision,) = sched.reschedule(Resources.from_counts((2, 2)))
        assert decision.action in ("warm", "full")  # warm unless refit fails
        assert decision.period is not None

    def test_starved_budget_reuses_valid_schedule(self):
        sched = IncrementalScheduler()
        sched.admit(_chain(0, "a"))
        sched.reschedule(Resources.from_counts((2, 2)))
        # Grow the platform under a budget too small even for a warm start:
        # the old solution still fits, so the ladder lands on reuse.
        sched.deadline = WARM_COST / 2
        (decision,) = sched.reschedule(Resources.from_counts((3, 3)))
        assert decision.action == "reuse"
        assert decision.cost == 0.0

    def test_capacity_loss_sheds_latest_arrivals(self):
        sched = IncrementalScheduler()
        for i in range(4):
            sched.admit(_chain(i, f"c{i}"))
        decisions = sched.reschedule(Resources.from_counts((1, 1)))
        actions = _actions(decisions)
        assert actions["c2"] == "shed" and actions["c3"] == "shed"
        assert actions["c0"] != "shed" and actions["c1"] != "shed"

    def test_zero_capacity_sheds_everything(self):
        sched = IncrementalScheduler()
        sched.admit(_chain(0, "a"))
        (decision,) = sched.reschedule(Resources.from_counts((0, 0)))
        assert decision.action == "shed"
        assert decision.period is None and decision.counts == ()

    def test_every_action_is_a_known_rung(self):
        assert set(RESCHED_ACTIONS) == {"keep", "warm", "full", "reuse", "shed"}


class TestWarmQualityGate:
    def test_warm_period_within_heuristic_bound(self):
        """The acceptance gate: a warm-started period never exceeds the
        proven feasibility upper bound of a cold solve."""
        chains = {f"c{i}": _chain(i, f"c{i}") for i in range(3)}
        sched = IncrementalScheduler(certify=True)
        for chain in chains.values():
            sched.admit(chain)
        sched.reschedule(Resources.from_counts((6, 6)))
        decisions = sched.reschedule(Resources.from_counts((5, 6)))
        warms = [d for d in decisions if d.action == "warm"]
        assert warms, "expected at least one warm start in a platform shrink"
        for decision in warms:
            _, upper = optimality_bracket(
                ChainProfile(chains[decision.name]),
                Resources.from_counts(decision.counts),
            )
            assert decision.period <= upper * (1 + 1e-9)

    def test_warm_solution_triplets_are_valid(self):
        sched = IncrementalScheduler()
        chain = _chain(3, "a")
        sched.admit(chain)
        sched.reschedule(Resources.from_counts((3, 3)))
        (decision,) = sched.reschedule(Resources.from_counts((2, 3)))
        solution = Solution.from_triplets(decision.triplets)
        assert solution.is_valid(
            ChainProfile(chain), Resources.from_counts(decision.counts)
        )


class TestDeadline:
    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            IncrementalScheduler(deadline=-1.0)

    def test_round_cost_never_exceeds_deadline(self):
        deadline = 10.0
        sched = IncrementalScheduler(deadline=deadline)
        for i in range(6):
            sched.admit(_chain(i, f"c{i}"))
        for counts in ((3, 3), (2, 2), (3, 3), (1, 1), (3, 3)):
            decisions = sched.reschedule(Resources.from_counts(counts))
            assert sum(d.cost for d in decisions) <= deadline + 1e-12

    def test_unbounded_deadline_solves_everyone(self):
        sched = IncrementalScheduler()
        for i in range(5):
            sched.admit(_chain(i, f"c{i}"))
        decisions = sched.reschedule(Resources.from_counts((3, 3)))
        assert all(d.action == "full" for d in decisions)


class TestAllocation:
    def test_allocation_is_deterministic(self):
        def run():
            sched = IncrementalScheduler()
            for i in range(5):
                sched.admit(_chain(i, f"c{i}"))
            return sched.reschedule(Resources.from_counts((4, 3)))

        assert run() == run()

    def test_kept_chains_get_at_least_one_core(self):
        sched = IncrementalScheduler()
        for i in range(5):
            sched.admit(_chain(i, f"c{i}"))
        decisions = sched.reschedule(Resources.from_counts((3, 2)))
        for decision in decisions:
            if decision.action != "shed":
                assert sum(decision.counts) >= 1

    def test_allocations_never_exceed_the_budget(self):
        sched = IncrementalScheduler()
        for i in range(7):
            sched.admit(_chain(i, f"c{i}"))
        decisions = sched.reschedule(Resources.from_counts((4, 4)))
        used = [0, 0]
        for decision in decisions:
            for v, c in enumerate(decision.counts):
                used[v] += c
        assert used[0] <= 4 and used[1] <= 4


class TestMetrics:
    def test_ladder_counters_are_recorded(self):
        metrics = MetricsRegistry()
        sched = IncrementalScheduler(metrics=metrics)
        sched.admit(_chain(0, "a"))
        budget = Resources.from_counts((2, 2))
        sched.reschedule(budget)
        sched.reschedule(budget)
        counters = dict(metrics.snapshot().counters)
        assert counters.get("sim.resched.full") == 1.0
        assert counters.get("sim.resched.keep") == 1.0
