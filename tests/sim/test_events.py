"""Tests for the deterministic event core (repro.sim.events)."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError
from repro.core.task import TaskChain
from repro.sim import EVENT_KINDS, EventQueue, SimEvent


def _chain(name="c"):
    return TaskChain.from_weights([4, 10, 3], [9, 21, 8], [True, True, False], name=name)


class TestSimEventValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(InvalidParameterError, match="event kind"):
            SimEvent("explode", 0.0)

    def test_rejects_negative_time(self):
        with pytest.raises(InvalidParameterError, match="time"):
            SimEvent("core_failure", -1.0)

    def test_arrival_requires_chain(self):
        with pytest.raises(InvalidParameterError, match="chain"):
            SimEvent("chain_arrival", 0.0)

    def test_arrival_fills_name_from_chain(self):
        event = SimEvent("chain_arrival", 0.0, chain=_chain("alpha"))
        assert event.name == "alpha"

    def test_departure_requires_name(self):
        with pytest.raises(InvalidParameterError, match="name"):
            SimEvent("chain_departure", 1.0)

    def test_core_event_bounds(self):
        with pytest.raises(InvalidParameterError, match="core_type"):
            SimEvent("core_failure", 0.0, core_type=-1)
        with pytest.raises(InvalidParameterError, match="cores"):
            SimEvent("core_recovery", 0.0, cores=0)

    def test_all_kinds_constructible(self):
        chain = _chain()
        for kind in EVENT_KINDS:
            if kind in ("chain_arrival", "chain_mutation"):
                event = SimEvent(kind, 1.0, chain=chain)
            elif kind == "chain_departure":
                event = SimEvent(kind, 1.0, name="x")
            else:
                event = SimEvent(kind, 1.0, core_type=0, cores=2)
            assert event.kind == kind


class TestEventQueue:
    def test_orders_by_time(self):
        queue: "EventQueue[str]" = EventQueue()
        queue.push(3.0, "late")
        queue.push(1.0, "early")
        queue.push(2.0, "mid")
        assert [queue.pop() for _ in range(3)] == [
            (1.0, "early"),
            (2.0, "mid"),
            (3.0, "late"),
        ]

    def test_equal_times_pop_in_insertion_order(self):
        queue: "EventQueue[int]" = EventQueue()
        for i in range(10):
            queue.push(5.0, i)
        assert [queue.pop()[1] for _ in range(10)] == list(range(10))

    def test_tiebreak_beats_insertion_order(self):
        queue: "EventQueue[str]" = EventQueue()
        queue.push(1.0, "b", tiebreak=(2,))
        queue.push(1.0, "a", tiebreak=(1,))
        assert queue.pop() == (1.0, "a")
        assert queue.pop() == (1.0, "b")

    def test_payloads_are_never_compared(self):
        class Opaque:  # no __lt__ on purpose
            pass

        queue: "EventQueue[Opaque]" = EventQueue()
        first, second = Opaque(), Opaque()
        queue.push(1.0, first)
        queue.push(1.0, second)
        assert queue.pop()[1] is first
        assert queue.pop()[1] is second

    def test_len_bool_peek(self):
        queue: "EventQueue[str]" = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(2.5, "x")
        assert queue and len(queue) == 1
        assert queue.peek_time() == 2.5
        queue.pop()
        assert not queue

    def test_empty_pop_and_peek_raise(self):
        queue: "EventQueue[str]" = EventQueue()
        with pytest.raises(InvalidParameterError, match="empty"):
            queue.pop()
        with pytest.raises(InvalidParameterError, match="empty"):
            queue.peek_time()
