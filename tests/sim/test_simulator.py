"""End-to-end simulator tests: acceptance storm, determinism, resume, export."""

from __future__ import annotations

import json

import pytest

from repro.engine import FaultPlan, FaultSpec
from repro.obs.export import validate_chrome_trace
from repro.sim import (
    SimConfig,
    SimEvent,
    SimJournal,
    SimTrace,
    bursty_trace,
    diurnal_trace,
    failure_storm_trace,
    sim_spans,
    simulate,
    write_sim_trace,
)
from repro.core.errors import InvalidParameterError
from repro.core.task import TaskChain


def _max_concurrent_downs(result):
    """Peak number of simultaneously down cores over the run."""
    edges = []
    for interval in result.down_intervals:
        edges.append((interval.start, 1))
        edges.append((interval.end, -1))
    edges.sort()
    peak = level = 0
    for _, delta in edges:
        level += delta
        peak = max(peak, level)
    return peak


class TestFailureStormAcceptance:
    """The ISSUE acceptance scenario, certified."""

    @pytest.fixture(scope="class")
    def result(self):
        return simulate(failure_storm_trace(seed=7), SimConfig(certify=True))

    def test_storm_has_three_overlapping_core_failures(self, result):
        assert _max_concurrent_downs(result) >= 3

    def test_zero_scheduleless_intervals(self, result):
        assert result.scheduleless_intervals == 0

    def test_zero_overcommit(self, result):
        assert result.overcommit_events == 0

    def test_warm_full_and_shed_all_exercised_and_counted(self, result):
        assert result.counter("sim.resched.warm") > 0
        assert result.counter("sim.resched.full") > 0
        assert result.counter("sim.resched.shed") > 0

    def test_every_event_processed(self, result):
        assert result.num_events == failure_storm_trace(seed=7).num_events

    def test_platform_recovers_by_the_end(self, result):
        assert result.records[-1].availability == 1.0

    def test_survivors_hold_finite_periods(self, result):
        scheduled = [p for _, p in result.final_periods if p is not None]
        assert scheduled and all(p > 0 for p in scheduled)
        assert result.aggregate_throughput() > 0


class TestDeterminism:
    def test_identical_runs_are_bitwise_identical(self):
        trace = failure_storm_trace(seed=3)
        a = simulate(trace, SimConfig(certify=True))
        b = simulate(trace, SimConfig(certify=True))
        assert a.records == b.records
        assert a.metrics.counters == b.metrics.counters
        assert a.final_periods == b.final_periods
        assert a.down_intervals == b.down_intervals

    def test_journal_presence_does_not_change_results(self, tmp_path):
        trace = bursty_trace(40, seed=1)
        bare = simulate(trace)
        journaled = simulate(trace, journal=tmp_path / "j.jsonl")
        assert bare.records == journaled.records
        assert bare.metrics.counters == journaled.metrics.counters

    def test_wall_clock_latencies_are_kept_apart(self):
        trace = failure_storm_trace(seed=3)
        result = simulate(trace)
        # One latency sample per live-processed event, none in the records.
        assert len(result.resched_seconds) == result.num_events


class TestJournalResume:
    def test_interrupt_and_resume_is_bitwise_identical(self, tmp_path):
        trace = failure_storm_trace(seed=7)
        reference = simulate(trace, SimConfig(certify=True))
        journal = tmp_path / "run.jsonl"
        partial = simulate(
            trace, SimConfig(certify=True), journal=journal, stop_after=9
        )
        assert partial.num_events == 9
        resumed = simulate(trace, SimConfig(certify=True), journal=journal)
        assert resumed.records == reference.records
        assert resumed.metrics.counters == reference.metrics.counters
        assert resumed.final_periods == reference.final_periods

    def test_resume_tolerates_torn_final_line(self, tmp_path):
        trace = failure_storm_trace(seed=7)
        reference = simulate(trace)
        journal = tmp_path / "run.jsonl"
        simulate(trace, journal=journal, stop_after=9)
        text = journal.read_text()
        journal.write_text(text[: len(text) - 30])  # tear the 9th record
        resumed = simulate(trace, journal=journal)
        assert resumed.records == reference.records

    def test_journal_rows_round_trip_exactly(self, tmp_path):
        trace = failure_storm_trace(seed=7)
        journal_path = tmp_path / "run.jsonl"
        result = simulate(trace, journal=journal_path)
        loaded = SimJournal(journal_path).load()
        assert loaded == result.records

    def test_wrong_journal_is_rejected(self, tmp_path):
        long_trace = bursty_trace(30, seed=0)
        journal = tmp_path / "run.jsonl"
        simulate(long_trace, journal=journal)
        short_trace = failure_storm_trace(seed=0)
        with pytest.raises(InvalidParameterError, match="journal"):
            simulate(short_trace, journal=journal)

    def test_stop_after_limits_processing(self):
        trace = bursty_trace(50, seed=2)
        result = simulate(trace, stop_after=10)
        assert result.num_events == 10


class TestInvariantsAcrossWorkloads:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bursty_never_scheduleless(self, seed):
        result = simulate(bursty_trace(60, seed=seed))
        assert result.scheduleless_intervals == 0
        assert result.overcommit_events == 0

    @pytest.mark.parametrize("seed", [0, 1])
    def test_diurnal_never_scheduleless(self, seed):
        result = simulate(diurnal_trace(60, seed=seed))
        assert result.scheduleless_intervals == 0
        assert result.overcommit_events == 0

    def test_deadline_bounded_storm_stays_feasible(self):
        result = simulate(failure_storm_trace(seed=7), SimConfig(deadline=16.0))
        assert result.scheduleless_intervals == 0
        assert result.overcommit_events == 0


class TestFaultPlanBridge:
    """One FaultPlan drives both the batch engine and the simulator."""

    def test_plan_platform_events_shape_the_run(self, tmp_path):
        chain = TaskChain.from_weights(
            [4, 10, 3], [9, 21, 8], [True, True, False], name="alpha"
        )
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="core_failure", at=5.0, core_type=0, cores=2),
                FaultSpec(kind="core_recovery", at=9.0, core_type=0, cores=2),
            ),
            state_dir=str(tmp_path),
        )
        trace = SimTrace.from_fault_plan(
            plan, (2, 2), events=(SimEvent("chain_arrival", 0.0, chain=chain),)
        )
        result = simulate(trace)
        availabilities = [r.availability for r in result.records]
        assert availabilities == [1.0, 0.5, 1.0]
        assert result.scheduleless_intervals == 0


class TestChromeExport:
    def test_trace_is_valid_and_has_core_lanes(self, tmp_path):
        result = simulate(failure_storm_trace(seed=7))
        path = tmp_path / "sim.json"
        write_sim_trace(path, result)
        validate_chrome_trace(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        lanes = {e["tid"] for e in events if e.get("cat") == "sim.core"}
        assert len(lanes) == len(
            {(d.core_type, d.core_index) for d in result.down_intervals}
        )
        assert any(e.get("cat") == "sim.event" for e in events)

    def test_span_ids_are_unique(self):
        result = simulate(failure_storm_trace(seed=7))
        spans = sim_spans(result)
        ids = [span.span_id for span in spans]
        assert len(ids) == len(set(ids))
