"""Tests for the instance-result memo cache."""

from __future__ import annotations

import threading

import pytest

from repro.core.types import Resources
from repro.engine.memo import InstanceResult, MemoCache, make_key
from repro.core.task import TaskChain


def _chain(seed=0):
    return TaskChain.from_weights([1 + seed, 2], [2, 4], [True, False])


class TestMakeKey:
    def test_key_components(self):
        chain = _chain()
        key = make_key(chain, Resources(3, 5), "herad")
        assert key == (chain.fingerprint, (3, 5), "herad")

    def test_same_content_same_key(self):
        a = TaskChain.from_weights([1, 2], [2, 4], [True, False], name="a")
        b = TaskChain.from_weights([1, 2], [2, 4], [True, False], name="b")
        assert make_key(a, Resources(1, 1), "fertac") == make_key(
            b, Resources(1, 1), "fertac"
        )

    def test_resources_and_strategy_distinguish(self):
        chain = _chain()
        base = make_key(chain, Resources(1, 1), "fertac")
        assert make_key(chain, Resources(1, 2), "fertac") != base
        assert make_key(chain, Resources(1, 1), "herad") != base

    def test_type_signature_distinguishes(self):
        """A k-type budget sharing its first two counts with a two-type one
        must key differently — the platform type signature is part of the
        instance identity."""
        chain = _chain()
        two = make_key(chain, Resources(10, 10), "fertac")
        three = make_key(
            chain, Resources.from_counts((10, 10, 4)), "fertac"
        )
        padded = make_key(
            chain, Resources.from_counts((10, 10, 0)), "fertac"
        )
        assert three != two
        assert padded != two  # even a zero third class is a different platform


class TestMemoCache:
    def test_roundtrip_and_counters(self):
        cache = MemoCache(maxsize=10)
        key = make_key(_chain(), Resources(1, 1), "fertac")
        assert cache.get(key) is None
        cache.put(key, InstanceResult(2.5, 1, 0))
        assert cache.get(key) == InstanceResult(2.5, 1, 0)
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1 and stats.size == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        cache = MemoCache(maxsize=2)
        keys = [make_key(_chain(i), Resources(1, 1), "fertac") for i in range(3)]
        cache.put(keys[0], InstanceResult(1.0, 0, 0))
        cache.put(keys[1], InstanceResult(2.0, 0, 0))
        assert cache.get(keys[0]) is not None  # refresh 0 -> 1 becomes LRU
        cache.put(keys[2], InstanceResult(3.0, 0, 0))
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[2]) is not None
        assert cache.stats.evictions == 1

    def test_clear_keeps_counters(self):
        cache = MemoCache(maxsize=4)
        key = make_key(_chain(), Resources(1, 1), "fertac")
        cache.put(key, InstanceResult(1.0, 1, 1))
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            MemoCache(maxsize=0)

    def test_get_many_equals_sequential_gets(self):
        """Bulk lookup is counter- and recency-identical to a get() loop."""
        keys = [make_key(_chain(i), Resources(1, 1), "fertac") for i in range(6)]
        bulk, solo = MemoCache(maxsize=4), MemoCache(maxsize=4)
        for cache in (bulk, solo):
            for i in (0, 1, 2, 3):
                cache.put(keys[i], InstanceResult(float(i), i, 0))
        # Mix of hits, misses, and repeats — order matters for LRU recency.
        probe = [keys[4], keys[1], keys[0], keys[5], keys[1]]
        got_bulk = bulk.get_many(probe)
        got_solo = [solo.get(key) for key in probe]
        assert got_bulk == got_solo
        assert bulk.stats == solo.stats
        assert bulk.stats.hits == 3 and bulk.stats.misses == 2
        # Same recency order afterwards: inserting one entry evicts the
        # same LRU victim from both caches.
        bulk.put(keys[4], InstanceResult(9.0, 0, 0))
        solo.put(keys[4], InstanceResult(9.0, 0, 0))
        assert [bulk.get(k) is None for k in keys] == [
            solo.get(k) is None for k in keys
        ]

    def test_put_many_equals_sequential_puts(self):
        """Bulk insert evicts the same victims and counts the same."""
        keys = [make_key(_chain(i), Resources(1, 1), "fertac") for i in range(8)]
        bulk, solo = MemoCache(maxsize=3), MemoCache(maxsize=3)
        items = [(keys[i], InstanceResult(float(i), i, 0)) for i in range(8)]
        bulk.put_many(items)
        for key, result in items:
            solo.put(key, result)
        assert bulk.stats == solo.stats
        assert bulk.stats.evictions == 5
        assert [bulk.get(k) for k in keys] == [solo.get(k) for k in keys]

    def test_put_many_refreshes_recency(self):
        keys = [make_key(_chain(i), Resources(1, 1), "fertac") for i in range(3)]
        cache = MemoCache(maxsize=2)
        cache.put_many((k, InstanceResult(1.0, 0, 0)) for k in keys[:2])
        # Re-inserting key 0 makes it MRU, so key 1 is the eviction victim.
        cache.put_many([(keys[0], InstanceResult(2.0, 0, 0))])
        cache.put(keys[2], InstanceResult(3.0, 0, 0))
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == InstanceResult(2.0, 0, 0)

    def test_thread_safety_smoke(self):
        cache = MemoCache(maxsize=64)
        keys = [make_key(_chain(i), Resources(1, 1), "fertac") for i in range(8)]

        def worker():
            for _ in range(200):
                for i, key in enumerate(keys):
                    cache.put(key, InstanceResult(float(i), i, i))
                    assert cache.get(key) == InstanceResult(float(i), i, i)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == len(keys)
