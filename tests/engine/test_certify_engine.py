"""--certify wiring through the campaign engine and experiment drivers."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import CertificationError, Resources, TaskChain, herad
from repro.core.binary_search import ScheduleOutcome
from repro.core.chain_stats import ChainProfile
from repro.core.registry import STRATEGIES, get_info
from repro.engine import CampaignEngine
from repro.engine.batch import solve_instance
from repro.engine.memo import InstanceResult, make_key
from repro.experiments.common import run_campaign


@pytest.fixture
def chains() -> list:
    return [
        TaskChain.from_weights(
            weights_big=[3 + i, 5, 2, 7],
            weights_little=[6 + 2 * i, 10, 4, 14],
            replicable=[True, True, False, True],
        )
        for i in range(4)
    ]


@pytest.fixture
def resources() -> Resources:
    return Resources(big=2, little=2)


def _tampered_herad(chain, resources) -> ScheduleOutcome:
    outcome = herad(chain, resources)
    return dataclasses.replace(outcome, period=outcome.period * 0.25)


class TestSolveInstance:
    def test_certified_results_match_uncertified(self, chains, resources):
        profile = ChainProfile(chains[0])
        plain = solve_instance(profile, resources, ["herad", "fertac"])
        audited = solve_instance(
            profile, resources, ["herad", "fertac"], certify=True
        )
        assert plain == audited

    def test_lying_strategy_is_caught(self, chains, resources, monkeypatch):
        broken = dataclasses.replace(STRATEGIES["herad"], func=_tampered_herad)
        monkeypatch.setitem(STRATEGIES, "herad", broken)
        profile = ChainProfile(chains[0])
        assert solve_instance(profile, resources, ["herad"])  # unaudited: passes
        with pytest.raises(CertificationError, match="herad"):
            solve_instance(profile, resources, ["herad"], certify=True)


class TestEngineBypass:
    def test_certify_ignores_poisoned_memo(self, chains, resources):
        engine = CampaignEngine(jobs=1, backend="serial", memo=True)
        poisoned = InstanceResult(period=1e-9, big_used=0, little_used=0)
        for chain in chains:
            engine.memo.put(make_key(chain, resources, "herad"), poisoned)

        replayed = engine.solve_instances(chains, resources, ["herad"])
        assert np.allclose(replayed["herad"].periods, 1e-9)

        audited = engine.solve_instances(
            chains, resources, ["herad"], certify=True
        )
        fresh = CampaignEngine(jobs=1, backend="serial", memo=False).solve_instances(
            chains, resources, ["herad"]
        )
        assert np.array_equal(audited["herad"].periods, fresh["herad"].periods)

    def test_certified_solves_refresh_the_cache(self, chains, resources):
        engine = CampaignEngine(jobs=1, backend="serial", memo=True)
        poisoned = InstanceResult(period=1e-9, big_used=0, little_used=0)
        key = make_key(chains[0], resources, "herad")
        engine.memo.put(key, poisoned)
        engine.solve_instances(chains, resources, ["herad"], certify=True)
        assert engine.memo.get(key).period != 1e-9


class TestRunCampaign:
    def test_certified_campaign_matches_plain(self, resources):
        plain = run_campaign(
            resources,
            0.5,
            num_chains=6,
            strategies=["herad", "fertac"],
            seed=3,
            jobs=1,
            engine=CampaignEngine(jobs=1, backend="serial", memo=False),
        )
        audited = run_campaign(
            resources,
            0.5,
            num_chains=6,
            strategies=["herad", "fertac"],
            seed=3,
            jobs=1,
            engine=CampaignEngine(jobs=1, backend="serial", memo=False),
            certify=True,
        )
        for name in ("herad", "fertac"):
            assert np.array_equal(
                plain.records[name].periods, audited.records[name].periods
            )

    def test_certified_campaign_through_process_backend(self, resources):
        audited = run_campaign(
            resources,
            0.5,
            num_chains=4,
            strategies=["herad", "2catac"],
            seed=1,
            jobs=2,
            engine=CampaignEngine(jobs=2, backend="process", memo=False),
            certify=True,
        )
        assert np.all(np.isfinite(audited.records["herad"].periods))
