"""Scaling acceptance: the shared-memory process tier changes nothing but speed.

ISSUE 10's contract, pinned end to end on oracle-grade workloads:

* serial vs ``--jobs 2`` vs ``--jobs 4`` vs ``--jobs 4 --kernel batch``
  produce **bitwise identical** campaign arrays (zero-pickle planes,
  cost-adaptive plans, and worker memo shards are pure transport);
* killing a ``--jobs`` process campaign mid-run and resuming through the
  same journal is bitwise identical to an uninterrupted serial run, with
  results flowing through shared memory on both legs;
* the worker memo shard's replayed observations keep the merged ``solve.*``
  counters in cross-tier parity with a serial run of the same campaign.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.registry import STRATEGIES
from repro.core.types import Resources
from repro.engine import (
    CampaignEngine,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
    load_journal,
)
from repro.obs.context import ObsConfig
from repro.workloads import generators as g
from repro.workloads.synthetic import GeneratorConfig, chain_batch

_FAST = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _oracle_chains():
    """The k2 oracle workload mix (diverse shapes, deterministic seeds)."""
    chains = []
    for sr in (0.2, 0.5, 0.8):
        cfg = GeneratorConfig(num_tasks=10, stateless_ratio=sr)
        chains.extend(chain_batch(4, cfg, seed=int(sr * 10)))
    chains += [
        g.fully_replicable_chain(8),
        g.fully_sequential_chain(8),
        g.alternating_chain(9),
        g.heavy_tail_chain(6),
    ]
    return chains


def _assert_same_arrays(a, b):
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_array_equal(a[name].periods, b[name].periods)
        np.testing.assert_array_equal(a[name].big_used, b[name].big_used)
        np.testing.assert_array_equal(a[name].little_used, b[name].little_used)


@pytest.fixture(scope="module")
def oracle_setup():
    chains = _oracle_chains()
    resources = Resources(3, 3)
    names = tuple(sorted(STRATEGIES))
    reference = CampaignEngine(
        jobs=1, backend="serial", memo=False
    ).solve_instances(chains, resources, names)
    return chains, resources, names, reference


class TestBitwiseParity:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_process_jobs_match_serial(self, oracle_setup, jobs):
        chains, resources, names, reference = oracle_setup
        arrays = CampaignEngine(
            jobs=jobs, backend="process", memo=False
        ).solve_instances(chains, resources, names)
        _assert_same_arrays(arrays, reference)

    def test_process_jobs4_batch_kernel_matches_serial(self, oracle_setup):
        chains, resources, names, reference = oracle_setup
        arrays = CampaignEngine(
            jobs=4, backend="process", memo=False, kernel="batch"
        ).solve_instances(chains, resources, names)
        _assert_same_arrays(arrays, reference)

    def test_shared_results_off_matches_on(self, oracle_setup):
        """The pickled-rows fallback is the same bits, only slower."""
        chains, resources, names, reference = oracle_setup
        arrays = CampaignEngine(
            jobs=2, backend="process", memo=False, shared_results=False
        ).solve_instances(chains, resources, names)
        _assert_same_arrays(arrays, reference)

    def test_unit_wall_is_advisory(self, oracle_setup):
        """Any unit wall -> a different plan -> the identical arrays."""
        chains, resources, names, reference = oracle_setup
        for wall in (1e-6, 10.0):
            arrays = CampaignEngine(
                jobs=2, backend="process", memo=False, unit_wall=wall
            ).solve_instances(chains, resources, names)
            _assert_same_arrays(arrays, reference)


class TestResumeThroughSharedMemory:
    def test_kill_then_resume_bitwise(self, tmp_path, oracle_setup):
        chains, resources, _, _ = oracle_setup
        names = ("fertac",)
        reference = CampaignEngine(
            jobs=1, backend="serial", memo=False
        ).solve_instances(chains, resources, names)

        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="interrupt",
                    fingerprint=ChainProfile(chains[9]).fingerprint,
                    tiers=("process",),
                    times=1,
                ),
            ),
            state_dir=str(tmp_path / "faults"),
        )
        path = tmp_path / "run.jsonl"
        interrupted = CampaignEngine(
            jobs=4, backend="process", memo=False, chunk_size=2,
            resilience=ResilienceConfig(retry=_FAST),
            journal=path, faults=plan,
        )
        with pytest.raises(KeyboardInterrupt):
            interrupted.solve_instances(chains, resources, names)
        interrupted.journal.close()

        # Finished units were journaled from *harvested* shared-memory rows.
        partial = load_journal(path)
        assert 0 < len(partial) < len(chains)

        resumed = CampaignEngine(
            jobs=4, backend="process", memo=False,
            resilience=ResilienceConfig(retry=_FAST), journal=path,
        )
        arrays = resumed.solve_instances(chains, resources, names)
        resumed.journal.close()
        _assert_same_arrays(arrays, reference)
        assert len(load_journal(path)) == len(chains)


class TestShardCounterParity:
    def test_solve_counters_match_serial(self):
        """Shard hits replay their solve observations: merged counters agree."""
        chain = _oracle_chains()[0]
        chains = [chain] * 6  # duplicates guarantee shard hits
        resources = Resources(3, 3)
        names = ("herad",)

        serial = CampaignEngine(
            jobs=1, backend="serial", memo=False, obs=ObsConfig(metrics=True)
        )
        serial.solve_instances(chains, resources, names)
        parallel = CampaignEngine(
            jobs=2, backend="process", memo=False, chunk_size=len(chains),
            obs=ObsConfig(metrics=True), worker_memo=True,
        )
        parallel.solve_instances(chains, resources, names)

        serial_counters = serial.obs.metrics.counters()
        parallel_counters = parallel.obs.metrics.counters()
        # The shard actually fired (one real solve, five replays)...
        hits = sum(
            value
            for name, value in parallel_counters.items()
            if name.startswith("worker.") and name.endswith(".memo.hits")
        )
        assert hits == 5.0
        # ...yet every deterministic solve.* counter matches serial exactly
        # (worker.* attribution is per-pid bookkeeping, exempt by design;
        # solve.seconds is wall-clock and inherently run-dependent).
        for name, value in serial_counters.items():
            if name.startswith("solve.") and not name.startswith(
                "solve.seconds"
            ):
                assert parallel_counters.get(name) == value, name

        serial_periods = serial.obs.metrics.sketch("solve.period.herad")
        parallel_periods = parallel.obs.metrics.sketch("solve.period.herad")
        assert serial_periods is not None and parallel_periods is not None
        assert parallel_periods.count == serial_periods.count
        assert parallel_periods.minimum == serial_periods.minimum
        assert parallel_periods.maximum == serial_periods.maximum
