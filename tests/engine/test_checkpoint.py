"""Tests for journaled checkpoints and --resume (repro.engine.checkpoint)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import Resources
from repro.engine import (
    CampaignEngine,
    CheckpointJournal,
    InstanceResult,
    MemoCache,
    load_journal,
)
from repro.workloads.synthetic import GeneratorConfig, chain_batch


def _chains(count=6, num_tasks=8, sr=0.5, seed=0):
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=sr)
    return list(chain_batch(count, config, seed=seed))


def _assert_same_arrays(a, b):
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_array_equal(a[name].periods, b[name].periods)
        np.testing.assert_array_equal(a[name].big_used, b[name].big_used)
        np.testing.assert_array_equal(a[name].little_used, b[name].little_used)


_KEY = ("fp0", (10, 4), "fertac")
#: An awkward float: shortest-repr JSON must round-trip it bitwise.
_RESULT = InstanceResult(period=0.1 + 0.2, big_used=3, little_used=1)


class TestJournalFile:
    def test_roundtrip_is_bitwise(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record(_KEY, _RESULT)
            journal.commit()
        rows = load_journal(path)
        assert rows[_KEY].period == _RESULT.period  # exact, not approx
        assert rows[_KEY] == _RESULT

    def test_missing_file_is_empty(self, tmp_path):
        assert load_journal(tmp_path / "absent.jsonl") == {}

    def test_torn_tail_is_skipped(self, tmp_path):
        """A crash mid-write leaves a truncated final line — never fatal."""
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record(_KEY, _RESULT)
        full_line = path.read_text()
        path.write_text(full_line + full_line[: len(full_line) // 2])
        rows = load_journal(path)
        assert rows == {_KEY: _RESULT}

    def test_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record(_KEY, _RESULT)
        with path.open("a") as handle:
            handle.write("not json at all\n")
            handle.write('{"fp": "x"}\n')  # incomplete row
            handle.write('{"fp": 3, "big": "ten"}\n')  # wrong types
            handle.write('[1, 2, 3]\n')  # not an object
            handle.write("\n")
        assert load_journal(path) == {_KEY: _RESULT}

    def test_duplicate_keys_last_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        newer = InstanceResult(period=9.5, big_used=1, little_used=1)
        with CheckpointJournal(path) as journal:
            journal.record(_KEY, _RESULT)
            journal.record(_KEY, newer)
        assert load_journal(path) == {_KEY: newer}

    def test_replay_into_warms_memo(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record(_KEY, _RESULT)
        memo = MemoCache()
        journal = CheckpointJournal(path)
        assert journal.replay_into(memo) == 1
        assert memo.get(_KEY) == _RESULT

    def test_replay_into_once_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record(_KEY, _RESULT)
        journal = CheckpointJournal(path)
        memo = MemoCache()
        assert journal.replay_into_once(memo) == 1
        assert journal.replay_into_once(memo) == 0

    def test_close_is_repeatable(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.jsonl")
        journal.record(_KEY, _RESULT)
        journal.close()
        journal.close()
        assert journal.rows_written == 1


class TestMixedJournal:
    """A single journal holding both two-type and k-type rows (satellite of
    the k-type platform refactor: the key carries the full type signature)."""

    _K3_KEY = ("fp0", (10, 4, 2), "ktype_ref")
    _K3_RESULT = InstanceResult(
        period=7.25, big_used=2, little_used=1, extra_used=(2,)
    )

    def test_mixed_rows_roundtrip(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record(_KEY, _RESULT)
            journal.record(self._K3_KEY, self._K3_RESULT)
        rows = load_journal(path)
        assert rows == {_KEY: _RESULT, self._K3_KEY: self._K3_RESULT}

    def test_two_type_rows_keep_legacy_layout(self, tmp_path):
        """k=2 rows must stay readable by (and written like) pre-k-type
        journals: big/little keys, no counts field."""
        import json

        path = tmp_path / "mixed.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record(_KEY, _RESULT)
            journal.record(self._K3_KEY, self._K3_RESULT)
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert lines[0] == {
            "fp": "fp0",
            "big": 10,
            "little": 4,
            "strategy": "fertac",
            "period": _RESULT.period,
            "big_used": 3,
            "little_used": 1,
        }
        assert lines[1] == {
            "fp": "fp0",
            "counts": [10, 4, 2],
            "strategy": "ktype_ref",
            "period": 7.25,
            "used": [2, 1, 2],
        }

    def test_same_prefix_budgets_do_not_collide(self, tmp_path):
        """A (10, 4) and a (10, 4, 2) instance of the same chain/strategy are
        different platforms and must replay to different memo entries."""
        path = tmp_path / "mixed.jsonl"
        two_key = ("fpX", (10, 4), "fertac")
        three_key = ("fpX", (10, 4, 2), "fertac")
        two = InstanceResult(period=3.0, big_used=1, little_used=1)
        three = InstanceResult(
            period=2.0, big_used=1, little_used=1, extra_used=(1,)
        )
        with CheckpointJournal(path) as journal:
            journal.record(two_key, two)
            journal.record(three_key, three)
        memo = MemoCache()
        assert CheckpointJournal(path).replay_into(memo) == 2
        assert memo.get(two_key) == two
        assert memo.get(three_key) == three

    def test_torn_ktype_tail_is_skipped(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record(self._K3_KEY, self._K3_RESULT)
        full_line = path.read_text()
        path.write_text(full_line + full_line[: len(full_line) // 2])
        assert load_journal(path) == {self._K3_KEY: self._K3_RESULT}


class TestEngineJournaling:
    def test_campaign_is_journaled_per_instance(self, tmp_path):
        chains = _chains(5)
        resources = Resources(2, 2)
        path = tmp_path / "run.jsonl"
        engine = CampaignEngine(jobs=1, backend="serial", journal=path)
        engine.solve_instances(chains, resources, ("fertac", "herad"))
        engine.journal.close()
        assert len(load_journal(path)) == 10  # 5 chains x 2 strategies

    def test_resume_replays_bitwise(self, tmp_path):
        chains = _chains(6)
        resources = Resources(2, 2)
        reference = CampaignEngine(
            jobs=1, backend="serial", memo=False
        ).solve_instances(chains, resources, ("fertac",))

        path = tmp_path / "run.jsonl"
        first = CampaignEngine(jobs=1, backend="serial", journal=path)
        _assert_same_arrays(
            first.solve_instances(chains, resources, ("fertac",)), reference
        )
        first.journal.close()

        # A fresh engine (fresh memo) resumes purely from the journal.
        second = CampaignEngine(jobs=1, backend="serial", journal=path)
        _assert_same_arrays(
            second.solve_instances(chains, resources, ("fertac",)), reference
        )
        assert second.memo is not None
        assert second.memo.stats.hits >= len(chains)
        second.journal.close()

    def test_journal_implies_memo(self, tmp_path):
        engine = CampaignEngine(
            jobs=1, memo=False, journal=tmp_path / "run.jsonl"
        )
        assert engine.memo is not None

    def test_certify_bypasses_journal_replay(self, tmp_path):
        """Cached scalars cannot be audited: --certify re-solves everything.

        A journal poisoned with a corrupt row must not leak into a certified
        run's arrays.
        """
        chains = _chains(3)
        resources = Resources(2, 2)
        reference = CampaignEngine(
            jobs=1, backend="serial", memo=False
        ).solve_instances(chains, resources, ("fertac",))

        path = tmp_path / "run.jsonl"
        first = CampaignEngine(jobs=1, backend="serial", journal=path)
        first.solve_instances(chains, resources, ("fertac",))
        first.journal.close()

        # Poison every journaled period.
        poisoned = load_journal(path)
        with CheckpointJournal(path) as journal:
            for key, result in poisoned.items():
                journal.record(
                    key,
                    InstanceResult(
                        period=result.period * 0.5,
                        big_used=result.big_used,
                        little_used=result.little_used,
                    ),
                )

        # Control: without certify the poisoned rows do replay.
        replayed = CampaignEngine(jobs=1, backend="serial", journal=path)
        tampered = replayed.solve_instances(chains, resources, ("fertac",))
        replayed.journal.close()
        assert tampered["fertac"].periods[0] == pytest.approx(
            reference["fertac"].periods[0] * 0.5
        )

        certified = CampaignEngine(jobs=1, backend="serial", journal=path)
        arrays = certified.solve_instances(
            chains, resources, ("fertac",), certify=True
        )
        certified.journal.close()
        _assert_same_arrays(arrays, reference)  # fresh solves, not the poison
