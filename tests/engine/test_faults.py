"""Tests for the deterministic fault-injection harness (repro.engine.faults)."""

from __future__ import annotations

import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.errors import (
    CertificationError,
    InvalidParameterError,
    SchedulingError,
)
from repro.core.types import Resources
from repro.engine import FAULT_KINDS, FaultPlan, FaultSpec, InjectedFault
from repro.engine.batch import solve_instance
from repro.workloads.synthetic import GeneratorConfig, chain_batch


def _profile(seed=0):
    config = GeneratorConfig(num_tasks=8, stateless_ratio=0.5)
    (chain,) = chain_batch(1, config, seed=seed)
    return ChainProfile(chain)


class TestFaultSpecValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(InvalidParameterError, match="fault kind"):
            FaultSpec(kind="explode")

    def test_rejects_nonpositive_times(self):
        with pytest.raises(InvalidParameterError, match="times"):
            FaultSpec(kind="raise", times=0)

    def test_rejects_negative_seconds(self):
        with pytest.raises(InvalidParameterError, match="seconds"):
            FaultSpec(kind="hang", seconds=-1.0)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(InvalidParameterError, match="factor"):
            FaultSpec(kind="corrupt", factor=0.0)

    def test_all_kinds_are_constructible(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind).kind == kind


class TestMatching:
    def test_wildcards_match_everything(self):
        spec = FaultSpec(kind="raise")
        assert spec.matches("abc", "fertac", "process")
        assert spec.matches("xyz", "herad", "serial")

    def test_fingerprint_scoping(self):
        spec = FaultSpec(kind="raise", fingerprint="abc")
        assert spec.matches("abc", "fertac", "process")
        assert not spec.matches("xyz", "fertac", "process")

    def test_strategy_scoping(self):
        spec = FaultSpec(kind="raise", strategy="fertac")
        assert spec.matches("abc", "fertac", "thread")
        assert not spec.matches("abc", "herad", "thread")

    def test_tier_scoping(self):
        spec = FaultSpec(kind="raise", tiers=("process",))
        assert spec.matches("abc", "fertac", "process")
        assert not spec.matches("abc", "fertac", "thread")
        assert not spec.matches("abc", "fertac", "serial")


class TestTrigger:
    def test_raise_is_transient_injected_fault(self):
        with pytest.raises(InjectedFault):
            FaultSpec(kind="raise").trigger()

    def test_bug_is_plain_scheduling_error(self):
        with pytest.raises(SchedulingError) as excinfo:
            FaultSpec(kind="bug").trigger()
        assert not isinstance(excinfo.value, InjectedFault)

    def test_interrupt_raises_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            FaultSpec(kind="interrupt").trigger()

    def test_hang_sleeps_then_returns(self):
        FaultSpec(kind="hang", seconds=0.0).trigger()  # returns, no raise

    def test_corrupt_does_not_fire_pre_solve(self):
        FaultSpec(kind="corrupt").trigger()  # corrupt is applied post-solve


class TestFiringLedger:
    def test_fire_consumes_and_disarms(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise", times=2),),
            state_dir=str(tmp_path),
        )
        assert plan.fire("fp", "fertac", "serial") is not None
        assert plan.fire("fp", "fertac", "serial") is not None
        assert plan.fire("fp", "fertac", "serial") is None
        assert plan.firings(0, "fp", "fertac") == 3

    def test_counters_are_per_instance(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise", times=1),),
            state_dir=str(tmp_path),
        )
        assert plan.fire("fp1", "fertac", "serial") is not None
        assert plan.fire("fp2", "fertac", "serial") is not None
        assert plan.fire("fp1", "herad", "serial") is not None
        assert plan.fire("fp1", "fertac", "serial") is None

    def test_ledger_survives_plan_objects(self, tmp_path):
        """The counter is on disk: a fresh (e.g. re-pickled) plan sees it."""
        specs = (FaultSpec(kind="raise", times=1),)
        first = FaultPlan(specs=specs, state_dir=str(tmp_path))
        assert first.fire("fp", "fertac", "process") is not None
        second = FaultPlan(specs=specs, state_dir=str(tmp_path))
        assert second.fire("fp", "fertac", "process") is None

    def test_non_matching_rule_does_not_consume(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise", strategy="herad", times=1),),
            state_dir=str(tmp_path),
        )
        assert plan.fire("fp", "fertac", "serial") is None
        assert plan.firings(0, "fp", "herad") == 0
        assert plan.fire("fp", "herad", "serial") is not None

    def test_first_matching_rule_wins(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="bug", strategy="fertac"),
                FaultSpec(kind="raise"),
            ),
            state_dir=str(tmp_path),
        )
        spec = plan.fire("fp", "fertac", "serial")
        assert spec is not None and spec.kind == "bug"


class TestCorruptionAndCertification:
    def test_corrupt_tamper_is_silent_without_certify(self, tmp_path):
        profile = _profile()
        resources = Resources(2, 2)
        clean = solve_instance(profile, resources, ("fertac",))["fertac"]
        plan = FaultPlan(
            specs=(FaultSpec(kind="corrupt", factor=0.5),),
            state_dir=str(tmp_path),
        )
        tampered = solve_instance(
            profile, resources, ("fertac",), faults=plan
        )["fertac"]
        assert tampered.period == pytest.approx(clean.period * 0.5)

    def test_certify_rejects_corrupt_claim(self, tmp_path):
        """The auditor's reason to exist: tampered outcomes cannot pass."""
        plan = FaultPlan(
            specs=(FaultSpec(kind="corrupt", factor=0.5),),
            state_dir=str(tmp_path),
        )
        with pytest.raises(CertificationError):
            solve_instance(
                _profile(), Resources(2, 2), ("fertac",),
                certify=True, faults=plan,
            )
