"""Tests for the campaign execution engine (fan-out + determinism)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.registry import PAPER_ORDER
from repro.core.types import Resources
from repro.engine import (
    BACKENDS,
    KERNELS,
    CampaignEngine,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    MemoCache,
    chunk_pending,
    default_engine,
    reset_default_engine,
    resolve_jobs,
    solve_unit,
)
from repro.engine.batch import PendingInstance, WorkUnit
from repro.experiments.common import run_campaign
from repro.workloads.synthetic import GeneratorConfig, chain_batch


def _chains(count=6, num_tasks=8, sr=0.5, seed=0):
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=sr)
    return list(chain_batch(count, config, seed=seed))


def _assert_same_arrays(a, b):
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_array_equal(a[name].periods, b[name].periods)
        np.testing.assert_array_equal(a[name].big_used, b[name].big_used)
        np.testing.assert_array_equal(a[name].little_used, b[name].little_used)


class TestResolveJobs:
    def test_none_is_cpu_count(self):
        assert resolve_jobs(None) >= 1

    def test_explicit_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestBatch:
    def test_chunking_covers_everything_in_order(self):
        chains = _chains(5)
        pending = [
            PendingInstance(index=i, chain=c, strategies=("fertac",))
            for i, c in enumerate(chains)
        ]
        units = chunk_pending(pending, Resources(2, 2), 2)
        assert [len(u.pending) for u in units] == [2, 2, 1]
        flat = [item.index for u in units for item in u.pending]
        assert flat == [0, 1, 2, 3, 4]

    def test_solve_unit_rows_are_indexed(self):
        chains = _chains(3)
        unit = WorkUnit(
            pending=tuple(
                PendingInstance(index=i, chain=c, strategies=("fertac", "otac_b"))
                for i, c in enumerate(chains)
            ),
            resources=Resources(2, 2),
        )
        outcome = solve_unit(unit)
        assert outcome.obs is None  # observability off: no payload shipped
        assert [index for index, _ in outcome.rows] == [0, 1, 2]
        for _, results in outcome.rows:
            assert set(results) == {"fertac", "otac_b"}
            for result in results.values():
                assert np.isfinite(result.period)


class TestDeterminism:
    """jobs=1 and jobs=N must produce bitwise-identical arrays."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_matches_serial_bitwise(self, backend):
        chains = _chains(6)
        resources = Resources(3, 3)
        serial = CampaignEngine(jobs=1, backend="serial", memo=False)
        parallel = CampaignEngine(jobs=2, backend=backend, memo=False, chunk_size=2)
        _assert_same_arrays(
            serial.solve_instances(chains, resources, PAPER_ORDER),
            parallel.solve_instances(chains, resources, PAPER_ORDER),
        )

    def test_chunk_size_does_not_matter(self):
        chains = _chains(5)
        resources = Resources(2, 3)
        a = CampaignEngine(jobs=2, backend="process", memo=False, chunk_size=1)
        b = CampaignEngine(jobs=2, backend="process", memo=False, chunk_size=4)
        _assert_same_arrays(
            a.solve_instances(chains, resources, ("herad", "fertac")),
            b.solve_instances(chains, resources, ("herad", "fertac")),
        )

    def test_memo_replay_is_bitwise_identical(self):
        chains = _chains(4)
        resources = Resources(2, 2)
        engine = CampaignEngine(jobs=1, memo=True)
        first = engine.solve_instances(chains, resources, PAPER_ORDER)
        second = engine.solve_instances(chains, resources, PAPER_ORDER)
        _assert_same_arrays(first, second)
        stats = engine.memo.stats
        assert stats.hits == len(chains) * len(PAPER_ORDER)

    def test_run_campaign_jobs_parity(self):
        kwargs = dict(num_chains=5, num_tasks=8, seed=11)
        resources = Resources(3, 2)
        a = run_campaign(
            resources, 0.5, jobs=1,
            engine=CampaignEngine(memo=False), **kwargs,
        )
        b = run_campaign(
            resources, 0.5, jobs=2,
            engine=CampaignEngine(memo=False, backend="process"), **kwargs,
        )
        for name in a.records:
            np.testing.assert_array_equal(
                a.records[name].periods, b.records[name].periods
            )
            np.testing.assert_array_equal(
                a.records[name].big_used, b.records[name].big_used
            )
            np.testing.assert_array_equal(
                a.records[name].little_used, b.records[name].little_used
            )


class TestMemoIntegration:
    def test_partial_hits_only_solve_the_rest(self):
        chains = _chains(4)
        resources = Resources(2, 2)
        memo = MemoCache()
        engine = CampaignEngine(jobs=1, memo=memo)
        engine.solve_instances(chains, resources, ("fertac",))
        assert memo.stats.size == 4
        engine.solve_instances(chains, resources, ("fertac", "otac_b"))
        stats = memo.stats
        assert stats.hits == 4  # fertac replayed
        assert stats.size == 8  # otac_b added

    def test_different_budgets_do_not_collide(self):
        chains = _chains(3)
        engine = CampaignEngine(jobs=1, memo=True)
        a = engine.solve_instances(chains, Resources(1, 1), ("fertac",))
        b = engine.solve_instances(chains, Resources(4, 4), ("fertac",))
        # More cores can only improve (or preserve) the greedy's period.
        assert (b["fertac"].periods <= a["fertac"].periods + 1e-9).all()

    def test_memo_disabled_always_solves(self):
        chains = _chains(3)
        engine = CampaignEngine(jobs=1, memo=False)
        assert engine.memo is None
        first = engine.solve_instances(chains, Resources(2, 2), ("fertac",))
        second = engine.solve_instances(chains, Resources(2, 2), ("fertac",))
        _assert_same_arrays(first, second)

    def test_shared_cache_across_engines(self):
        chains = _chains(3)
        memo = MemoCache()
        CampaignEngine(jobs=1, memo=memo).solve_instances(
            chains, Resources(2, 2), ("fertac",)
        )
        CampaignEngine(jobs=1, memo=memo).solve_instances(
            chains, Resources(2, 2), ("fertac",)
        )
        assert memo.stats.hits == 3


class TestEngineConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            CampaignEngine(backend="gpu")
        assert "serial" in BACKENDS

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            CampaignEngine(chunk_size=0)

    def test_default_engine_is_a_singleton_until_reset(self):
        reset_default_engine()
        a = default_engine()
        assert default_engine() is a
        reset_default_engine()
        assert default_engine() is not a

    def test_measure_latency_positive_and_unmemoized(self):
        from repro.core.chain_stats import ChainProfile

        profiles = [ChainProfile(c) for c in _chains(3)]
        engine = CampaignEngine(jobs=1, memo=True)
        latency = engine.measure_latency("fertac", profiles, Resources(2, 2))
        assert latency > 0
        assert engine.memo.stats.size == 0  # measurement never populates

    def test_measure_latency_rejects_empty_profiles(self):
        from repro.core.errors import InvalidParameterError

        engine = CampaignEngine(jobs=1)
        with pytest.raises(InvalidParameterError, match="non-empty"):
            engine.measure_latency("fertac", [], Resources(2, 2))


class TestSentinelPrefill:
    def test_arrays_prefilled_with_sentinels_not_garbage(self):
        """Unsolved cells are NaN/-1, never uninitialized np.empty memory."""
        engine = CampaignEngine(jobs=1, backend="serial", memo=False)
        arrays = engine.solve_instances([], Resources(2, 2), ("fertac",))
        assert arrays["fertac"].periods.shape == (0,)
        # With chains, every cell must be overwritten by a real solve.
        arrays = engine.solve_instances(_chains(3), Resources(2, 2), ("fertac",))
        assert np.isfinite(arrays["fertac"].periods).all()
        assert (arrays["fertac"].big_used >= 0).all()
        assert (arrays["fertac"].little_used >= 0).all()


class TestResilientDeterminism:
    """Resilience enabled + no faults must stay bitwise identical."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_fault_free_resilient_matches_serial_bitwise(self, backend):
        from repro.engine import ResilienceConfig, RetryPolicy

        chains = _chains(6)
        resources = Resources(3, 3)
        serial = CampaignEngine(jobs=1, backend="serial", memo=False)
        resilient = CampaignEngine(
            jobs=1 if backend == "serial" else 4,
            backend=backend,
            memo=False,
            chunk_size=2,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
                timeout=60.0,
            ),
        )
        _assert_same_arrays(
            serial.solve_instances(chains, resources, PAPER_ORDER),
            resilient.solve_instances(chains, resources, PAPER_ORDER),
        )
        report = resilient.last_report
        assert report is not None
        assert report.retries == 0
        assert report.timeouts == 0
        assert report.degradations == 0
        assert report.quarantined == 0


class TestKernelTier:
    """The batch kernel tier must be invisible in results, on every backend."""

    def test_rejects_unknown_kernel(self):
        with pytest.raises(InvalidParameterError):
            CampaignEngine(kernel="simd")
        assert KERNELS == ("python", "batch")

    @pytest.mark.parametrize(
        "backend,jobs", [("serial", 1), ("thread", 2), ("process", 4)]
    )
    def test_batch_kernel_bitwise_parity(self, backend, jobs):
        chains = _chains(6)
        resources = Resources(3, 3)
        python = CampaignEngine(jobs=1, backend="serial", memo=False)
        batch = CampaignEngine(
            jobs=jobs, backend=backend, memo=False, chunk_size=2, kernel="batch"
        )
        _assert_same_arrays(
            python.solve_instances(chains, resources, PAPER_ORDER),
            batch.solve_instances(chains, resources, PAPER_ORDER),
        )

    def test_batch_kernel_with_certification(self):
        chains = _chains(4)
        engine = CampaignEngine(
            jobs=1, backend="serial", memo=False, kernel="batch"
        )
        arrays = engine.solve_instances(
            chains, Resources(2, 3), PAPER_ORDER, certify=True
        )
        for name in PAPER_ORDER:
            assert np.isfinite(arrays[name].periods).all()

    def test_fault_plan_forces_python_path(self, tmp_path):
        """Faults fire per cell, so an armed plan must bypass the batch tier."""
        chains = _chains(2)
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise", strategy="herad"),),
            state_dir=str(tmp_path),
        )
        unit = WorkUnit(
            pending=tuple(
                PendingInstance(index=i, chain=c, strategies=("herad",))
                for i, c in enumerate(chains)
            ),
            resources=Resources(2, 2),
            faults=plan,
            kernel="batch",
        )
        with pytest.raises(InjectedFault):
            solve_unit(unit)

    def test_batch_kernel_memo_counters_match_python(self):
        """Bulk memo fills count hits/misses exactly like per-instance gets."""
        chains = _chains(5)
        resources = Resources(3, 3)

        def run(kernel, jobs=1, backend="serial"):
            engine = CampaignEngine(
                jobs=jobs, backend=backend, memo=MemoCache(), kernel=kernel
            )
            engine.solve_instances(chains, resources, PAPER_ORDER)
            engine.solve_instances(chains, resources, PAPER_ORDER)
            stats = engine.memo.stats
            return stats.hits, stats.misses, stats.size

        want = run("python")
        assert want == (
            len(chains) * len(PAPER_ORDER),
            len(chains) * len(PAPER_ORDER),
            len(chains) * len(PAPER_ORDER),
        )
        assert run("batch") == want
        assert run("batch", jobs=4, backend="process") == want
