"""Acceptance tests: interrupt a parallel campaign mid-run, resume bitwise.

ISSUE 3's headline guarantee: killing a ``--jobs 8`` process-tier campaign
mid-run and re-running with the same journal produces arrays bitwise
identical to an uninterrupted serial run.  The kill is provoked with a
deterministic ``interrupt`` fault (a Ctrl-C raised inside a worker), which
also proves the retry machinery never swallows ``KeyboardInterrupt`` and
that pools are shut down with ``cancel_futures`` on the way out.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.types import Resources
from repro.engine import (
    CampaignEngine,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
    load_journal,
)
from repro.engine import resilience as resilience_mod
from repro.workloads.synthetic import GeneratorConfig, chain_batch

_FAST = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _chains(count, num_tasks=8, sr=0.5, seed=0):
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=sr)
    return list(chain_batch(count, config, seed=seed))


def _assert_same_arrays(a, b):
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_array_equal(a[name].periods, b[name].periods)
        np.testing.assert_array_equal(a[name].big_used, b[name].big_used)
        np.testing.assert_array_equal(a[name].little_used, b[name].little_used)


class TestInterruptAndResume:
    def test_killed_process_campaign_resumes_bitwise(self, tmp_path):
        chains = _chains(16)
        resources = Resources(2, 2)
        reference = CampaignEngine(
            jobs=1, backend="serial", memo=False
        ).solve_instances(chains, resources, ("fertac",))

        # A Ctrl-C fired inside one worker process, mid-campaign.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="interrupt",
                    fingerprint=ChainProfile(chains[9]).fingerprint,
                    tiers=("process",),
                    times=1,
                ),
            ),
            state_dir=str(tmp_path / "faults"),
        )
        path = tmp_path / "run.jsonl"
        interrupted = CampaignEngine(
            jobs=8,
            backend="process",
            memo=False,
            chunk_size=2,
            resilience=ResilienceConfig(retry=_FAST),
            journal=path,
            faults=plan,
        )
        with pytest.raises(KeyboardInterrupt):
            interrupted.solve_instances(chains, resources, ("fertac",))
        interrupted.journal.close()

        # The journal kept every completed chunk, minus the interrupted one.
        partial = load_journal(path)
        assert 0 < len(partial) < len(chains)

        # Resume with a fresh engine: replay + solve the remainder.
        resumed = CampaignEngine(
            jobs=8,
            backend="process",
            memo=False,
            chunk_size=2,
            resilience=ResilienceConfig(retry=_FAST),
            journal=path,
        )
        arrays = resumed.solve_instances(chains, resources, ("fertac",))
        resumed.journal.close()
        _assert_same_arrays(arrays, reference)
        assert len(load_journal(path)) == len(chains)

    def test_interrupt_on_serial_tier_propagates(self, tmp_path):
        """The retry loop classifies only Exception: a Ctrl-C escapes it."""
        chains = _chains(4)
        plan = FaultPlan(
            specs=(FaultSpec(kind="interrupt", times=1),),
            state_dir=str(tmp_path / "faults"),
        )
        engine = CampaignEngine(
            jobs=1,
            backend="serial",
            memo=False,
            resilience=ResilienceConfig(retry=_FAST),
            faults=plan,
        )
        with pytest.raises(KeyboardInterrupt):
            engine.solve_instances(chains, Resources(2, 2), ("fertac",))


class _RecordingThreadPool(ThreadPoolExecutor):
    """A ThreadPoolExecutor double that records its shutdown arguments."""

    shutdown_calls: "list[tuple[bool, bool]]" = []

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        type(self).shutdown_calls.append((wait, cancel_futures))
        super().shutdown(wait=wait, cancel_futures=cancel_futures)


class TestCleanShutdown:
    def test_interrupted_pool_is_cancelled_not_leaked(
        self, tmp_path, monkeypatch
    ):
        """On Ctrl-C the pool is shut down with cancel_futures=True and the

        journal retains every chunk that finished before the interrupt.
        """
        _RecordingThreadPool.shutdown_calls = []
        monkeypatch.setitem(
            resilience_mod._POOL_CLASSES, "thread", _RecordingThreadPool
        )
        chains = _chains(6)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="interrupt",
                    fingerprint=ChainProfile(chains[4]).fingerprint,
                    tiers=("thread",),
                    times=1,
                ),
            ),
            state_dir=str(tmp_path / "faults"),
        )
        path = tmp_path / "run.jsonl"
        engine = CampaignEngine(
            jobs=2,
            backend="thread",
            memo=False,
            chunk_size=1,
            resilience=ResilienceConfig(retry=_FAST),
            journal=path,
            faults=plan,
        )
        with pytest.raises(KeyboardInterrupt):
            engine.solve_instances(chains, Resources(2, 2), ("fertac",))
        engine.journal.close()

        # The dirty round's pool was torn down without waiting on workers.
        assert (False, True) in _RecordingThreadPool.shutdown_calls
        # Chunks completed before the escalation survived in the journal.
        assert len(load_journal(path)) == len(chains) - 1
