"""Cost-adaptive planner: determinism, wall targeting, batch grouping.

The planner's contract (:mod:`repro.engine.plan`): a *pure* function of
``(pending, jobs, cost snapshot, unit wall, chunk_size, kernel)`` whose
groups partition every pending cell exactly once — results can therefore
never depend on the plan, only wall time can (the engine's bitwise parity
across job counts is pinned separately in ``test_scaling.py``).
"""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError
from repro.engine.batch import PendingInstance
from repro.engine.plan import (
    DEFAULT_UNIT_WALL_S,
    AdaptiveCostModel,
    plan_units,
)
from repro.workloads.synthetic import GeneratorConfig, chain_batch


def _pending(count=12, strategies=("a", "b"), num_tasks=6):
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=0.5)
    chains = list(chain_batch(count, config, seed=0))
    return [
        PendingInstance(index=i, chain=chain, strategies=tuple(strategies))
        for i, chain in enumerate(chains)
    ]


def _cells(groups):
    return [
        (item.index, name)
        for group in groups
        for item in group
        for name in item.strategies
    ]


class TestPlanDeterminism:
    def test_same_inputs_same_plan(self):
        pending = _pending()
        snapshot = (("a", 0.004), ("b", 0.001))
        first = plan_units(pending, jobs=4, cost_snapshot=snapshot)
        second = plan_units(pending, jobs=4, cost_snapshot=snapshot)
        assert first == second

    def test_every_cell_planned_exactly_once(self):
        pending = _pending(count=17, strategies=("a", "b", "c"))
        for kernel in ("python", "batch"):
            groups = plan_units(pending, jobs=3, kernel=kernel)
            cells = _cells(groups)
            assert sorted(cells) == sorted(
                (item.index, name)
                for item in pending
                for name in item.strategies
            )
            assert len(cells) == len(set(cells))

    def test_cost_snapshot_changes_plan_not_cells(self):
        pending = _pending(count=20)
        cheap = plan_units(pending, jobs=2, cost_snapshot=(("a", 1e-5),))
        costly = plan_units(pending, jobs=2, cost_snapshot=(("a", 1.0),))
        assert sorted(_cells(cheap)) == sorted(_cells(costly))


class TestWallTargeting:
    def test_costly_cells_make_smaller_units(self):
        pending = _pending(count=16, strategies=("a",))
        small = plan_units(
            pending, jobs=1, cost_snapshot=(("a", DEFAULT_UNIT_WALL_S),)
        )
        # Each cell alone reaches the wall: one instance per unit.
        assert all(len(group) == 1 for group in small)
        large = plan_units(pending, jobs=1, cost_snapshot=(("a", 1e-9),))
        # Near-free cells: the units-per-worker clamp still splits the
        # campaign for load balance, but units hold many instances.
        assert max(len(group) for group in large) > 1

    def test_small_campaign_still_fans_out(self):
        pending = _pending(count=16, strategies=("a",))
        groups = plan_units(
            pending, jobs=4, cost_snapshot=(("a", 1e-9),)
        )
        assert len(groups) >= 4  # ~units-per-worker clamp, not one blob

    def test_chunk_size_override_is_fixed_rows(self):
        pending = _pending(count=10)
        groups = plan_units(pending, jobs=4, chunk_size=4)
        assert [len(g) for g in groups] == [4, 4, 2]
        assert [item.index for g in groups for item in g] == list(range(10))

    def test_invalid_parameters_rejected(self):
        pending = _pending(count=2)
        with pytest.raises(InvalidParameterError):
            plan_units(pending, jobs=1, unit_wall=0.0)
        with pytest.raises(InvalidParameterError):
            plan_units(pending, jobs=1, chunk_size=0)

    def test_empty_pending_empty_plan(self):
        assert plan_units([], jobs=4) == []


class TestBatchGrouping:
    def test_batch_kernel_units_are_single_strategy(self):
        pending = _pending(count=9, strategies=("a", "b"))
        groups = plan_units(pending, jobs=2, kernel="batch")
        for group in groups:
            names = {name for item in group for name in item.strategies}
            assert len(names) == 1  # one maximal solve_batch shard per unit
        # First-appearance strategy order: all "a" units precede all "b".
        order = [
            next(iter({n for item in g for n in item.strategies}))
            for g in groups
        ]
        assert order == sorted(order, key=("a", "b").index)

    def test_batch_with_chunk_size_keeps_fixed_rows(self):
        pending = _pending(count=6, strategies=("a", "b"))
        groups = plan_units(pending, jobs=2, kernel="batch", chunk_size=3)
        assert [len(g) for g in groups] == [3, 3]


class TestAdaptiveCostModel:
    def test_prior_then_ewma_fold(self):
        model = AdaptiveCostModel()
        prior = model.cell_cost("a")
        assert prior > 0
        model.observe_unit({"a": 4}, seconds=0.4)  # 0.1 s per cell
        first = model.cell_cost("a")
        assert first == pytest.approx(0.1)
        model.observe_unit({"a": 4}, seconds=0.2)  # 0.05 s per cell
        second = model.cell_cost("a")
        assert 0.05 < second < first  # EWMA, not replacement

    def test_apportions_by_current_estimates(self):
        model = AdaptiveCostModel()
        model.feed_sketch("slow", 0.09)
        model.feed_sketch("fast", 0.01)
        model.observe_unit({"slow": 1, "fast": 1}, seconds=0.1)
        assert model.cell_cost("slow") > model.cell_cost("fast")

    def test_ignores_degenerate_observations(self):
        model = AdaptiveCostModel()
        model.observe_unit({}, seconds=1.0)
        model.observe_unit({"a": 1}, seconds=0.0)
        model.feed_sketch("a", 0.0)
        assert model.snapshot() == ()

    def test_snapshot_is_sorted_and_frozen(self):
        model = AdaptiveCostModel()
        model.feed_sketch("b", 0.2)
        model.feed_sketch("a", 0.1)
        snapshot = model.snapshot()
        assert snapshot == (("a", 0.1), ("b", 0.2))
        assert isinstance(snapshot, tuple)
