"""Regression tests: fault injection must fire under ``--kernel batch``.

The batch kernel used to route a unit to the vectorized path whenever *any*
batching was possible, silently bypassing an armed fault plan for the whole
unit.  ``solve_unit`` now splits a faulted batch unit per instance: every
instance the plan could target goes through the scalar per-cell path (the
only place ``FaultPlan.fire`` is consulted), the rest keep the batch
kernels, and the merged rows stay bitwise identical to the python kernel.
"""

from __future__ import annotations

import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.errors import CertificationError
from repro.core.types import Resources
from repro.engine import FaultPlan, FaultSpec, InjectedFault, solve_unit
from repro.engine.batch import PendingInstance, WorkUnit
from repro.obs.context import ObsConfig
from repro.workloads.synthetic import GeneratorConfig, chain_batch


def _chains(count=4, seed=0):
    config = GeneratorConfig(num_tasks=8, stateless_ratio=0.5)
    return list(chain_batch(count, config, seed=seed))


def _unit(chains, strategies=("fertac",), **kwargs):
    return WorkUnit(
        pending=tuple(
            PendingInstance(index=i, chain=c, strategies=strategies)
            for i, c in enumerate(chains)
        ),
        resources=Resources(2, 2),
        **kwargs,
    )


def _rows_by_index(outcome):
    return dict(outcome.rows)


class TestTargeting:
    def test_targets_matches_scoped_specs(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise", fingerprint="abc", strategy="fertac"),),
            state_dir=str(tmp_path),
        )
        assert plan.targets("abc", ("fertac",))
        assert plan.targets("abc", ("herad", "fertac"))
        assert not plan.targets("xyz", ("fertac",))
        assert not plan.targets("abc", ("herad",))

    def test_timed_specs_never_target_cells(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(kind="core_failure", at=1.0, cores=2),),
            state_dir=str(tmp_path),
        )
        assert not plan.targets("abc", ("fertac",))


class TestBatchKernelInjection:
    def test_corrupt_fires_under_batch_kernel(self, tmp_path):
        """The regression: a targeted instance in a batched unit is hit."""
        chains = _chains(4)
        target = ChainProfile(chains[2]).fingerprint
        clean = _rows_by_index(solve_unit(_unit(chains, kernel="batch")))
        plan = FaultPlan(
            specs=(FaultSpec(kind="corrupt", factor=0.5, fingerprint=target),),
            state_dir=str(tmp_path),
        )
        tampered = _rows_by_index(
            solve_unit(_unit(chains, kernel="batch", faults=plan))
        )
        assert tampered[2]["fertac"].period == pytest.approx(
            clean[2]["fertac"].period * 0.5
        )

    def test_untargeted_instances_stay_bitwise_identical(self, tmp_path):
        chains = _chains(4)
        target = ChainProfile(chains[2]).fingerprint
        clean = _rows_by_index(solve_unit(_unit(chains, kernel="batch")))
        plan = FaultPlan(
            specs=(FaultSpec(kind="corrupt", factor=0.5, fingerprint=target),),
            state_dir=str(tmp_path),
        )
        tampered = _rows_by_index(
            solve_unit(_unit(chains, kernel="batch", faults=plan))
        )
        for index in (0, 1, 3):
            assert tampered[index] == clean[index]

    def test_raise_fires_under_batch_kernel(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise"),), state_dir=str(tmp_path)
        )
        with pytest.raises(InjectedFault):
            solve_unit(_unit(_chains(2), kernel="batch", faults=plan))

    def test_certify_catches_batch_corruption(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(kind="corrupt", factor=0.5),),
            state_dir=str(tmp_path),
        )
        with pytest.raises(CertificationError):
            solve_unit(
                _unit(_chains(2), kernel="batch", faults=plan, certify=True)
            )

    def test_wildcard_plan_matches_python_kernel_results(self, tmp_path):
        """With every instance targeted, the routed path must equal the
        python kernel bitwise (it is the same scalar code)."""
        chains = _chains(5, seed=3)
        plan_a = FaultPlan(
            specs=(FaultSpec(kind="corrupt", factor=0.25),),
            state_dir=str(tmp_path / "a"),
        )
        plan_b = FaultPlan(
            specs=(FaultSpec(kind="corrupt", factor=0.25),),
            state_dir=str(tmp_path / "b"),
        )
        strategies = ("fertac", "herad")
        batch = _rows_by_index(
            solve_unit(_unit(chains, strategies, kernel="batch", faults=plan_a))
        )
        python = _rows_by_index(
            solve_unit(_unit(chains, strategies, kernel="python", faults=plan_b))
        )
        assert batch == python

    def test_mixed_unit_records_both_solve_paths(self, tmp_path):
        """A routed unit runs scalar cells for targeted instances and the
        vectorized kernels for the rest — visible in the obs metrics."""
        chains = _chains(4)
        target = ChainProfile(chains[1]).fingerprint
        plan = FaultPlan(
            specs=(FaultSpec(kind="corrupt", factor=0.5, fingerprint=target),),
            state_dir=str(tmp_path),
        )
        outcome = solve_unit(
            _unit(
                chains,
                kernel="batch",
                faults=plan,
                obs=ObsConfig(trace=False, metrics=True),
            )
        )
        assert outcome.obs is not None
        counters = dict(outcome.obs.metrics.histograms)
        assert any(name.startswith("solve.seconds.") for name in counters)
        assert any(name.startswith("solve_batch.seconds.") for name in counters)
