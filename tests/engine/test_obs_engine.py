"""Engine + observability: bitwise parity, span coverage, exact counters.

The contract under test (DESIGN.md §10): instrumentation is recorded *about*
the campaign and never consulted by it — results are bitwise identical with
observability on or off, for every backend — and counters merged from worker
payloads are *exact*, not sampled: a ``--jobs 4`` process campaign reports
the same numbers as the serial run, even with faults firing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.registry import PAPER_ORDER
from repro.core.types import Resources
from repro.engine import (
    CampaignEngine,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
)
from repro.obs import Observability, ObsConfig, monotonic, validate_chrome_trace, to_chrome_trace
from repro.workloads.synthetic import GeneratorConfig, chain_batch


def _chains(count=6, num_tasks=8, seed=0):
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=0.5)
    return list(chain_batch(count, config, seed=seed))


def _assert_same_arrays(a, b):
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_array_equal(a[name].periods, b[name].periods)
        np.testing.assert_array_equal(a[name].big_used, b[name].big_used)
        np.testing.assert_array_equal(a[name].little_used, b[name].little_used)


def _resilience_counters(engine):
    return {
        name: value
        for name, value in engine.obs.metrics.counters().items()
        if name.startswith("resilience.")
    }


class TestBitwiseParity:
    """Tracing on vs off must not change a single result bit."""

    @pytest.mark.parametrize("backend,jobs", [("serial", 1), ("thread", 2), ("process", 4)])
    def test_traced_matches_untraced(self, backend, jobs):
        chains = _chains(6)
        resources = Resources(3, 3)
        plain = CampaignEngine(jobs=jobs, backend=backend, memo=False, chunk_size=2)
        traced = CampaignEngine(
            jobs=jobs, backend=backend, memo=False, chunk_size=2, obs=True
        )
        _assert_same_arrays(
            plain.solve_instances(chains, resources, PAPER_ORDER),
            traced.solve_instances(chains, resources, PAPER_ORDER),
        )


class TestSpanCoverage:
    def test_root_span_covers_the_campaign_wall_time(self):
        chains = _chains(6)
        engine = CampaignEngine(jobs=2, backend="process", memo=False, obs=True)
        start = monotonic()
        engine.solve_instances(chains, Resources(3, 3), PAPER_ORDER)
        wall = monotonic() - start
        spans = engine.obs.spans()
        (root,) = [span for span in spans if span.name == "campaign"]
        assert root.duration / wall >= 0.95
        # Worker spans land inside the root span's window.
        for span in spans:
            assert span.start >= root.start - 1e-9
            assert span.end <= root.end + 1e-9

    def test_trace_of_a_process_campaign_is_chrome_valid(self):
        chains = _chains(6)
        engine = CampaignEngine(jobs=2, backend="process", memo=False, obs=True)
        engine.solve_instances(chains, Resources(3, 3), ("herad", "fertac"))
        document = to_chrome_trace(engine.obs.spans(), engine.obs.metrics.snapshot())
        assert validate_chrome_trace(document) == []
        assert len([s for s in engine.obs.spans() if s.name == "solve"]) == 12


class TestExactCounters:
    """Merged worker counters equal the serial run's, to the last increment."""

    def test_fault_free_process_counters_match_serial(self):
        chains = _chains(6)
        resources = Resources(3, 3)

        def run(jobs, backend):
            engine = CampaignEngine(
                jobs=jobs, backend=backend, memo=False, chunk_size=1,
                obs=ObsConfig(metrics=True),
            )
            engine.solve_instances(chains, resources, PAPER_ORDER)
            return engine.obs.metrics.counters()

        serial = run(1, "serial")
        assert serial["solve.count"] == len(chains) * len(PAPER_ORDER)
        assert serial["binary_search.calls"] > 0
        assert serial["herad.calls"] == len(chains)
        assert run(4, "process") == serial
        assert run(2, "thread") == serial

    def test_faulted_process_counters_match_serial(self, tmp_path):
        """Injected faults: retries/quarantines count identically on every tier."""
        chains = _chains(6)
        resources = Resources(3, 3)
        bug_chain = ChainProfile(chains[2]).fingerprint

        def run(jobs, backend, state_dir):
            plan = FaultPlan(
                specs=(
                    # One chain's fertac has a deterministic bug -> quarantined.
                    # times is high enough that the bug persists down the whole
                    # process -> thread -> serial degradation ladder.
                    FaultSpec(
                        kind="bug",
                        fingerprint=bug_chain,
                        strategy="fertac",
                        times=10,
                    ),
                    # Every other chain's fertac fails transiently once -> retried.
                    FaultSpec(kind="raise", strategy="fertac", times=1),
                ),
                state_dir=str(state_dir),
            )
            engine = CampaignEngine(
                jobs=jobs,
                backend=backend,
                memo=False,
                chunk_size=1,
                resilience=ResilienceConfig(
                    retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
                ),
                faults=plan,
                obs=ObsConfig(metrics=True),
            )
            arrays = engine.solve_instances(chains, resources, ("fertac", "herad"))
            return arrays, _resilience_counters(engine), engine

        serial_arrays, serial_counters, _ = run(1, "serial", tmp_path / "serial")
        process_arrays, process_counters, engine = run(
            4, "process", tmp_path / "process"
        )

        # Retry and quarantine counts are tier-independent facts about the
        # campaign; degradation counts are not (the serial tier has no ladder
        # left to descend), so they are exempt from the parity claim.
        for name in ("resilience.retries", "resilience.quarantined"):
            assert serial_counters.get(name) == process_counters.get(name), name
        assert serial_counters["resilience.retries"] == 5.0
        assert serial_counters["resilience.quarantined"] == 1.0
        assert "resilience.degradations" not in serial_counters
        assert process_counters.get("resilience.degradations", 0.0) >= 1.0
        # Quarantined cells are NaN sentinels on both tiers, solved cells equal.
        for name in ("fertac", "herad"):
            np.testing.assert_array_equal(
                serial_arrays[name].periods, process_arrays[name].periods
            )
            np.testing.assert_array_equal(
                serial_arrays[name].big_used, process_arrays[name].big_used
            )
        assert np.isnan(serial_arrays["fertac"].periods[2])
        assert len(engine.failures) == 1

    def test_batch_kernel_memo_counters_match_serial(self):
        """Bulk memo fills (get_many/put_many) count hit/miss exactly like
        the per-instance gets of a serial python-kernel campaign — on the
        same ``--jobs 4`` tiers the per-instance counters are pinned on."""
        chains = _chains(6)
        resources = Resources(3, 3)
        cells = len(chains) * len(PAPER_ORDER)

        def run(jobs, backend, kernel):
            engine = CampaignEngine(
                jobs=jobs, backend=backend, memo=True, chunk_size=1,
                obs=ObsConfig(metrics=True), kernel=kernel,
            )
            engine.solve_instances(chains, resources, PAPER_ORDER)
            engine.solve_instances(chains, resources, PAPER_ORDER)
            counters = engine.obs.metrics.counters()
            memo_counters = {
                name: counters.get(name, 0.0)
                for name in ("memo.hits", "memo.misses")
            }
            assert engine.memo.stats.hits == memo_counters["memo.hits"]
            assert engine.memo.stats.misses == memo_counters["memo.misses"]
            return memo_counters

        serial = run(1, "serial", "python")
        assert serial == {"memo.hits": float(cells), "memo.misses": float(cells)}
        assert run(4, "process", "batch") == serial
        assert run(2, "thread", "batch") == serial
        assert run(4, "process", "python") == serial

    def test_memo_hit_counters_are_exact(self):
        chains = _chains(4)
        resources = Resources(2, 2)
        engine = CampaignEngine(jobs=1, memo=True, obs=ObsConfig(metrics=True))
        engine.solve_instances(chains, resources, PAPER_ORDER)
        first = engine.obs.metrics.counter("memo.misses")
        assert first == len(chains) * len(PAPER_ORDER)
        assert engine.obs.metrics.counter("memo.hits") == 0.0
        engine.solve_instances(chains, resources, PAPER_ORDER)
        assert engine.obs.metrics.counter("memo.hits") == len(chains) * len(PAPER_ORDER)


class TestNoOpPath:
    def test_disabled_engine_ships_no_payloads(self):
        chains = _chains(4)
        engine = CampaignEngine(jobs=1, backend="serial", memo=False)
        assert engine.obs.enabled is False
        assert engine.obs.worker_config() is None
        engine.solve_instances(chains, Resources(2, 2), ("fertac",))
        assert engine.obs.spans() == ()
        assert engine.obs.metrics.snapshot().empty

    def test_observability_accepts_config_and_instance(self):
        obs = Observability(ObsConfig(trace=True))
        assert CampaignEngine(obs=obs).obs is obs
        assert CampaignEngine(obs=ObsConfig(metrics=True)).obs.enabled
        assert CampaignEngine(obs=True).obs.config == ObsConfig(
            trace=True, metrics=True
        )
