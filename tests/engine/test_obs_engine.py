"""Engine + observability: bitwise parity, span coverage, exact counters.

The contract under test (DESIGN.md §10): instrumentation is recorded *about*
the campaign and never consulted by it — results are bitwise identical with
observability on or off, for every backend — and counters merged from worker
payloads are *exact*, not sampled: a ``--jobs 4`` process campaign reports
the same numbers as the serial run, even with faults firing.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.registry import PAPER_ORDER
from repro.core.types import Resources
from repro.engine import (
    CampaignEngine,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
)
from repro.obs import Observability, ObsConfig, monotonic, validate_chrome_trace, to_chrome_trace
from repro.workloads.synthetic import GeneratorConfig, chain_batch


def _chains(count=6, num_tasks=8, seed=0):
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=0.5)
    return list(chain_batch(count, config, seed=seed))


def _assert_same_arrays(a, b):
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_array_equal(a[name].periods, b[name].periods)
        np.testing.assert_array_equal(a[name].big_used, b[name].big_used)
        np.testing.assert_array_equal(a[name].little_used, b[name].little_used)


def _resilience_counters(engine):
    return {
        name: value
        for name, value in engine.obs.metrics.counters().items()
        if name.startswith("resilience.")
    }


class TestBitwiseParity:
    """Tracing on vs off must not change a single result bit."""

    @pytest.mark.parametrize("backend,jobs", [("serial", 1), ("thread", 2), ("process", 4)])
    def test_traced_matches_untraced(self, backend, jobs):
        chains = _chains(6)
        resources = Resources(3, 3)
        plain = CampaignEngine(jobs=jobs, backend=backend, memo=False, chunk_size=2)
        traced = CampaignEngine(
            jobs=jobs, backend=backend, memo=False, chunk_size=2, obs=True
        )
        _assert_same_arrays(
            plain.solve_instances(chains, resources, PAPER_ORDER),
            traced.solve_instances(chains, resources, PAPER_ORDER),
        )


class TestSpanCoverage:
    def test_root_span_covers_the_campaign_wall_time(self):
        chains = _chains(6)
        engine = CampaignEngine(jobs=2, backend="process", memo=False, obs=True)
        start = monotonic()
        engine.solve_instances(chains, Resources(3, 3), PAPER_ORDER)
        wall = monotonic() - start
        spans = engine.obs.spans()
        (root,) = [span for span in spans if span.name == "campaign"]
        assert root.duration / wall >= 0.95
        # Worker spans land inside the root span's window.
        for span in spans:
            assert span.start >= root.start - 1e-9
            assert span.end <= root.end + 1e-9

    def test_trace_of_a_process_campaign_is_chrome_valid(self):
        chains = _chains(6)
        engine = CampaignEngine(jobs=2, backend="process", memo=False, obs=True)
        engine.solve_instances(chains, Resources(3, 3), ("herad", "fertac"))
        document = to_chrome_trace(engine.obs.spans(), engine.obs.metrics.snapshot())
        assert validate_chrome_trace(document) == []
        assert len([s for s in engine.obs.spans() if s.name == "solve"]) == 12


def _deterministic(counters):
    """Drop the ``worker.*`` attribution namespace, the one documented
    exemption from cross-tier counter parity (pid-keyed, wall-clock valued —
    DESIGN.md §15)."""
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith("worker.")
    }


class TestExactCounters:
    """Merged worker counters equal the serial run's, to the last increment."""

    def test_fault_free_process_counters_match_serial(self):
        chains = _chains(6)
        resources = Resources(3, 3)

        def run(jobs, backend):
            engine = CampaignEngine(
                jobs=jobs, backend=backend, memo=False, chunk_size=1,
                obs=ObsConfig(metrics=True),
            )
            engine.solve_instances(chains, resources, PAPER_ORDER)
            return engine.obs.metrics.counters()

        serial = run(1, "serial")
        assert serial["solve.count"] == len(chains) * len(PAPER_ORDER)
        assert serial["binary_search.calls"] > 0
        assert serial["herad.calls"] == len(chains)
        assert not any(name.startswith("worker.") for name in serial)
        process = run(4, "process")
        assert _deterministic(process) == serial
        assert _deterministic(run(2, "thread")) == serial
        # The process tier additionally attributed its IPC costs per worker.
        worker_units = {
            name: value
            for name, value in process.items()
            if name.startswith("worker.") and name.endswith(".units")
        }
        assert worker_units
        assert sum(worker_units.values()) == len(chains)  # chunk_size=1

    def test_faulted_process_counters_match_serial(self, tmp_path):
        """Injected faults: retries/quarantines count identically on every tier."""
        chains = _chains(6)
        resources = Resources(3, 3)
        bug_chain = ChainProfile(chains[2]).fingerprint

        def run(jobs, backend, state_dir):
            plan = FaultPlan(
                specs=(
                    # One chain's fertac has a deterministic bug -> quarantined.
                    # times is high enough that the bug persists down the whole
                    # process -> thread -> serial degradation ladder.
                    FaultSpec(
                        kind="bug",
                        fingerprint=bug_chain,
                        strategy="fertac",
                        times=10,
                    ),
                    # Every other chain's fertac fails transiently once -> retried.
                    FaultSpec(kind="raise", strategy="fertac", times=1),
                ),
                state_dir=str(state_dir),
            )
            engine = CampaignEngine(
                jobs=jobs,
                backend=backend,
                memo=False,
                chunk_size=1,
                resilience=ResilienceConfig(
                    retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
                ),
                faults=plan,
                obs=ObsConfig(metrics=True),
            )
            arrays = engine.solve_instances(chains, resources, ("fertac", "herad"))
            return arrays, _resilience_counters(engine), engine

        serial_arrays, serial_counters, _ = run(1, "serial", tmp_path / "serial")
        process_arrays, process_counters, engine = run(
            4, "process", tmp_path / "process"
        )

        # Retry and quarantine counts are tier-independent facts about the
        # campaign; degradation counts are not (the serial tier has no ladder
        # left to descend), so they are exempt from the parity claim.
        for name in ("resilience.retries", "resilience.quarantined"):
            assert serial_counters.get(name) == process_counters.get(name), name
        assert serial_counters["resilience.retries"] == 5.0
        assert serial_counters["resilience.quarantined"] == 1.0
        assert "resilience.degradations" not in serial_counters
        assert process_counters.get("resilience.degradations", 0.0) >= 1.0
        # Quarantined cells are NaN sentinels on both tiers, solved cells equal.
        for name in ("fertac", "herad"):
            np.testing.assert_array_equal(
                serial_arrays[name].periods, process_arrays[name].periods
            )
            np.testing.assert_array_equal(
                serial_arrays[name].big_used, process_arrays[name].big_used
            )
        assert np.isnan(serial_arrays["fertac"].periods[2])
        assert len(engine.failures) == 1

    def test_batch_kernel_memo_counters_match_serial(self):
        """Bulk memo fills (get_many/put_many) count hit/miss exactly like
        the per-instance gets of a serial python-kernel campaign — on the
        same ``--jobs 4`` tiers the per-instance counters are pinned on."""
        chains = _chains(6)
        resources = Resources(3, 3)
        cells = len(chains) * len(PAPER_ORDER)

        def run(jobs, backend, kernel):
            engine = CampaignEngine(
                jobs=jobs, backend=backend, memo=True, chunk_size=1,
                obs=ObsConfig(metrics=True), kernel=kernel,
            )
            engine.solve_instances(chains, resources, PAPER_ORDER)
            engine.solve_instances(chains, resources, PAPER_ORDER)
            counters = engine.obs.metrics.counters()
            memo_counters = {
                name: counters.get(name, 0.0)
                for name in ("memo.hits", "memo.misses")
            }
            assert engine.memo.stats.hits == memo_counters["memo.hits"]
            assert engine.memo.stats.misses == memo_counters["memo.misses"]
            return memo_counters

        serial = run(1, "serial", "python")
        assert serial == {"memo.hits": float(cells), "memo.misses": float(cells)}
        assert run(4, "process", "batch") == serial
        assert run(2, "thread", "batch") == serial
        assert run(4, "process", "python") == serial

    def test_memo_hit_counters_are_exact(self):
        chains = _chains(4)
        resources = Resources(2, 2)
        engine = CampaignEngine(jobs=1, memo=True, obs=ObsConfig(metrics=True))
        engine.solve_instances(chains, resources, PAPER_ORDER)
        first = engine.obs.metrics.counter("memo.misses")
        assert first == len(chains) * len(PAPER_ORDER)
        assert engine.obs.metrics.counter("memo.hits") == 0.0
        engine.solve_instances(chains, resources, PAPER_ORDER)
        assert engine.obs.metrics.counter("memo.hits") == len(chains) * len(PAPER_ORDER)


class TestSketchParity:
    """Deterministic observation streams sketch bitwise-identically per tier.

    The ``solve.period.*`` observations are a pure function of the campaign
    (results are bitwise identical across tiers), and sketches carry only
    integer bucket counts plus exact min/max — no order-dependent float
    summation — so the merged ``--jobs 4`` sketch snapshot must pickle to
    the *same bytes* as the serial one.
    """

    @staticmethod
    def _sketches(jobs, backend, kernel="python"):
        chains = _chains(6)
        engine = CampaignEngine(
            jobs=jobs, backend=backend, memo=False, chunk_size=1,
            obs=ObsConfig(metrics=True), kernel=kernel,
        )
        engine.solve_instances(chains, Resources(3, 3), PAPER_ORDER)
        snapshot = engine.obs.metrics.snapshot()
        return tuple(
            (name, sketch)
            for name, sketch in snapshot.sketches
            if name.startswith("solve.period.")
        )

    def test_process_tier_sketches_are_bitwise_identical_to_serial(self):
        serial = self._sketches(1, "serial")
        assert serial  # every strategy sketched its period stream
        assert {name for name, _ in serial} == {
            f"solve.period.{name}" for name in PAPER_ORDER
        }
        process = self._sketches(4, "process")
        assert pickle.dumps(process) == pickle.dumps(serial)
        assert pickle.dumps(self._sketches(2, "thread")) == pickle.dumps(serial)

    def test_batch_kernel_sketches_match_the_scalar_path(self):
        serial = self._sketches(1, "serial")
        batched = self._sketches(4, "process", kernel="batch")
        assert pickle.dumps(batched) == pickle.dumps(serial)

    def test_quantiles_come_from_the_merged_sketch(self):
        (first, *_rest) = self._sketches(4, "process")
        _name, sketch = first
        assert sketch.count == 6  # one observation per chain
        assert sketch.minimum <= sketch.p50 <= sketch.p99 <= sketch.maximum


class TestWorkerAttribution:
    """The process tier attributes IPC costs per worker pid."""

    @staticmethod
    def _run(backend, jobs, **engine_kwargs):
        chains = _chains(6)
        engine = CampaignEngine(
            jobs=jobs, backend=backend, memo=False, chunk_size=1,
            obs=ObsConfig(metrics=True), **engine_kwargs,
        )
        engine.solve_instances(chains, Resources(3, 3), ("herad", "fertac"))
        return engine.obs.metrics.counters(), engine.obs.metrics.snapshot()

    def test_process_tier_reports_pickle_and_pool_wait(self):
        counters, snapshot = self._run("process", 4)
        pids = {
            name.split(".")[1]
            for name in counters
            if name.startswith("worker.")
        }
        assert pids
        for pid in pids:
            assert counters[f"worker.{pid}.pickle.bytes_in"] > 0
            assert counters[f"worker.{pid}.pickle.bytes_out"] > 0
            assert counters[f"worker.{pid}.pickle.seconds_in"] >= 0.0
            assert counters[f"worker.{pid}.pool_wait.seconds"] >= 0.0
        wait = snapshot.sketch("worker.pool_wait.seconds")
        assert wait is not None
        assert wait.count == 6  # one wait observation per unit (chunk_size=1)

    def test_serial_and_thread_tiers_record_no_attribution(self):
        for backend, jobs in (("serial", 1), ("thread", 2)):
            counters, _ = self._run(backend, jobs)
            assert not any(name.startswith("worker.") for name in counters)

    def test_worker_memo_shard_elides_duplicate_cells(self):
        chain = _chains(1)[0]
        chains = [chain] * 6  # six copies; memo=False so all six dispatch
        engine = CampaignEngine(
            jobs=2, backend="process", memo=False,
            chunk_size=len(chains),  # one unit -> one worker sees every copy
            obs=ObsConfig(metrics=True), worker_memo=True,
        )
        baseline = CampaignEngine(jobs=1, backend="serial", memo=False)
        arrays = engine.solve_instances(chains, Resources(3, 3), ("herad",))
        expected = baseline.solve_instances(chains, Resources(3, 3), ("herad",))
        _assert_same_arrays(arrays, expected)
        counters = engine.obs.metrics.counters()
        hits = sum(
            value
            for name, value in counters.items()
            if name.startswith("worker.") and name.endswith(".memo.hits")
        )
        misses = sum(
            value
            for name, value in counters.items()
            if name.startswith("worker.") and name.endswith(".memo.misses")
        )
        assert misses == 1.0  # first copy solved
        assert hits == 5.0  # remaining copies replayed from the shard
        # Shard hits replay their deterministic solve observations, so the
        # merged solve.* counters keep cross-tier parity: a serial run of the
        # same campaign also records six solves.
        assert counters["solve.count"] == 6.0


class TestNoOpPath:
    def test_disabled_engine_ships_no_payloads(self):
        chains = _chains(4)
        engine = CampaignEngine(jobs=1, backend="serial", memo=False)
        assert engine.obs.enabled is False
        assert engine.obs.worker_config() is None
        engine.solve_instances(chains, Resources(2, 2), ("fertac",))
        assert engine.obs.spans() == ()
        assert engine.obs.metrics.snapshot().empty

    def test_observability_accepts_config_and_instance(self):
        obs = Observability(ObsConfig(trace=True))
        assert CampaignEngine(obs=obs).obs is obs
        assert CampaignEngine(obs=ObsConfig(metrics=True)).obs.enabled
        assert CampaignEngine(obs=True).obs.config == ObsConfig(
            trace=True, metrics=True
        )
