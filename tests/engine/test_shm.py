"""Shared-memory result planes: layout, lifecycle, and leak guarantees.

The zero-pickle transport (:mod:`repro.engine.shm`) is only sound if three
properties hold everywhere:

* **round-trip fidelity** — a cell written through a worker-side
  :class:`~repro.engine.shm.PlaneView` reads back the identical
  ``InstanceResult`` (float64 round-trips bitwise), including the
  ``extra_used`` tail on k-type budgets;
* **sentinel discipline** — unwritten cells are visibly unsolved
  (NaN period) and harvest simply skips them, mirroring quarantine;
* **no leaks, ever** — the engine unlinks its segments on the normal path,
  on worker crashes, on ``KeyboardInterrupt``, and when the resilience
  ladder degrades process → thread (the descriptor is stripped from retried
  units and the segments destroyed before the thread pass starts).
"""

from __future__ import annotations

import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.types import Resources
from repro.engine import (
    CampaignEngine,
    FaultPlan,
    FaultSpec,
    InstanceResult,
    ResilienceConfig,
    RetryPolicy,
)
from repro.engine.shm import PlaneDescriptor, ResultPlanes
from repro.workloads.synthetic import GeneratorConfig, chain_batch

_FAST = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _chains(count, num_tasks=8, sr=0.5, seed=0):
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=sr)
    return list(chain_batch(count, config, seed=seed))


class _Cell:
    """Minimal PendingInstance stand-in for harvest (index + strategies)."""

    def __init__(self, index, strategies):
        self.index = index
        self.strategies = strategies


class TestPlaneRoundTrip:
    def test_write_read_identical(self):
        planes = ResultPlanes.allocate(("a", "b"), chains=4, ktype=2)
        assert planes is not None
        try:
            view = planes.descriptor.open()
            try:
                result = InstanceResult(period=3.141592653589793, big_used=2,
                                        little_used=1)
                view.write(3, "b", result)
                assert view.read(3, "b") == result
            finally:
                view.close()
        finally:
            planes.destroy()

    def test_ktype_extra_used_tail(self):
        planes = ResultPlanes.allocate(("a",), chains=2, ktype=4)
        assert planes is not None
        try:
            view = planes.descriptor.open()
            try:
                result = InstanceResult(
                    period=7.25, big_used=3, little_used=2, extra_used=(1, 4)
                )
                view.write(0, "a", result)
                got = view.read(0, "a")
                assert got == result
                assert isinstance(got.period, float)
                assert isinstance(got.big_used, int)
            finally:
                view.close()
        finally:
            planes.destroy()

    def test_unwritten_cell_reads_none(self):
        planes = ResultPlanes.allocate(("a",), chains=2, ktype=2)
        assert planes is not None
        try:
            view = planes.descriptor.open()
            try:
                assert view.read(1, "a") is None
            finally:
                view.close()
        finally:
            planes.destroy()

    def test_harvest_skips_sentinel_cells(self):
        planes = ResultPlanes.allocate(("a", "b"), chains=3, ktype=2)
        assert planes is not None
        try:
            view = planes.descriptor.open()
            try:
                view.write(0, "a", InstanceResult(1.0, 1, 0))
                view.write(2, "b", InstanceResult(2.0, 2, 1))
            finally:
                view.close()
            rows = planes.harvest(
                [_Cell(0, ("a", "b")), _Cell(2, ("a", "b"))]
            )
            assert rows == [
                (0, {"a": InstanceResult(1.0, 1, 0)}),
                (2, {"b": InstanceResult(2.0, 2, 1)}),
            ]
        finally:
            planes.destroy()

    def test_allocate_empty_returns_none(self):
        assert ResultPlanes.allocate((), chains=4, ktype=2) is None
        assert ResultPlanes.allocate(("a",), chains=0, ktype=2) is None


class TestLifecycle:
    def test_destroy_is_idempotent_and_unlinks(self):
        planes = ResultPlanes.allocate(("a",), chains=1, ktype=2)
        assert planes is not None
        descriptor = planes.descriptor
        planes.destroy()
        planes.destroy()  # second call is a no-op, not an error
        with pytest.raises(FileNotFoundError):
            descriptor.open()

    def test_harvest_after_destroy_raises(self):
        planes = ResultPlanes.allocate(("a",), chains=1, ktype=2)
        assert planes is not None
        planes.destroy()
        with pytest.raises(RuntimeError):
            planes.harvest([_Cell(0, ("a",))])

    def test_descriptor_usage_width_floor(self):
        descriptor = PlaneDescriptor(
            periods_name="x", usage_name="y", strategies=("a",),
            chains=1, ktype=1,
        )
        assert descriptor.usage_width == 2


def _leak_recorder(monkeypatch):
    """Record every allocation so tests can assert the segments are gone."""
    allocated = []
    original = ResultPlanes.allocate.__func__

    def recording(cls, strategies, chains, ktype):
        planes = original(cls, strategies, chains, ktype)
        if planes is not None:
            allocated.append(planes.descriptor)
        return planes

    monkeypatch.setattr(
        ResultPlanes, "allocate", classmethod(recording)
    )
    return allocated


def _assert_all_unlinked(descriptors):
    assert descriptors, "campaign never allocated planes"
    for descriptor in descriptors:
        with pytest.raises(FileNotFoundError):
            descriptor.open()


class TestNoLeaks:
    def test_normal_campaign_unlinks(self, monkeypatch):
        allocated = _leak_recorder(monkeypatch)
        chains = _chains(8)
        engine = CampaignEngine(jobs=2, backend="process", memo=False)
        engine.solve_instances(chains, Resources(2, 2), ("fertac",))
        _assert_all_unlinked(allocated)

    def test_worker_crash_unlinks(self, monkeypatch, tmp_path):
        allocated = _leak_recorder(monkeypatch)
        chains = _chains(8)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="crash",
                    fingerprint=ChainProfile(chains[3]).fingerprint,
                    tiers=("process",),
                    times=1,
                ),
            ),
            state_dir=str(tmp_path / "faults"),
        )
        engine = CampaignEngine(
            jobs=2, backend="process", memo=False, chunk_size=2,
            resilience=ResilienceConfig(retry=_FAST), faults=plan,
        )
        engine.solve_instances(chains, Resources(2, 2), ("fertac",))
        _assert_all_unlinked(allocated)

    def test_worker_interrupt_unlinks(self, monkeypatch, tmp_path):
        allocated = _leak_recorder(monkeypatch)
        chains = _chains(8)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="interrupt",
                    fingerprint=ChainProfile(chains[3]).fingerprint,
                    tiers=("process",),
                    times=1,
                ),
            ),
            state_dir=str(tmp_path / "faults"),
        )
        engine = CampaignEngine(
            jobs=2, backend="process", memo=False, chunk_size=2,
            resilience=ResilienceConfig(retry=_FAST), faults=plan,
        )
        with pytest.raises(KeyboardInterrupt):
            engine.solve_instances(chains, Resources(2, 2), ("fertac",))
        _assert_all_unlinked(allocated)

    def test_degradation_to_thread_unlinks_and_strips(
        self, monkeypatch, tmp_path
    ):
        """Process -> thread fallback retires the planes mid-campaign."""
        allocated = _leak_recorder(monkeypatch)
        chains = _chains(8)
        # A crash that outlives the process tier's whole retry budget forces
        # the ladder down to the thread tier, where the fault stops firing.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="crash",
                    fingerprint=ChainProfile(chains[3]).fingerprint,
                    tiers=("process",),
                    times=_FAST.max_attempts,
                ),
            ),
            state_dir=str(tmp_path / "faults"),
        )
        engine = CampaignEngine(
            jobs=2, backend="process", memo=False, chunk_size=2,
            resilience=ResilienceConfig(retry=_FAST), faults=plan,
        )
        arrays = engine.solve_instances(chains, Resources(2, 2), ("fertac",))
        assert engine.last_report is not None
        assert engine.last_report.degradations >= 1
        # Every cell still solved (the thread pass rescued the crashed unit).
        assert not any(p != p for p in arrays["fertac"].periods)  # no NaN
        _assert_all_unlinked(allocated)
