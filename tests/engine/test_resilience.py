"""Tests for retry/degradation/quarantine recovery (repro.engine.resilience).

Every recovery path is *provoked* with a deterministic fault plan rather than
merely reasoned about: transient raise → retry succeeds; worker crash →
process pool rebuilt; hang → soft deadline abandons and retries; tier-scoped
persistent failure → degradation ladder; deterministic bug → quarantine with
sentinel cells; corrupt claim → certification rejects, re-solve recovers.
"""

from __future__ import annotations

import pickle
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.errors import (
    CertificationError,
    InfeasibleScheduleError,
    InvalidChainError,
    InvalidParameterError,
    SchedulingError,
)
from repro.core.types import Resources
from repro.engine import (
    CampaignEngine,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceConfig,
    RetryPolicy,
    is_transient,
)
from repro.workloads.synthetic import GeneratorConfig, chain_batch


def _chains(count=4, num_tasks=8, sr=0.5, seed=0):
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=sr)
    return list(chain_batch(count, config, seed=seed))


def _fingerprint(chain):
    return ChainProfile(chain).fingerprint


#: Fast retry schedule for tests (no real backoff sleeps).
_FAST = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _reference(chains, resources, strategies=("fertac",)):
    return CampaignEngine(jobs=1, backend="serial", memo=False).solve_instances(
        chains, resources, strategies
    )


def _assert_same_arrays(a, b):
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_array_equal(a[name].periods, b[name].periods)
        np.testing.assert_array_equal(a[name].big_used, b[name].big_used)
        np.testing.assert_array_equal(a[name].little_used, b[name].little_used)


class TestRetryPolicy:
    def test_rejects_bad_attempts(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_delays(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(base_delay=-0.1)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter=1.5)

    def test_delay_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.35, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.35)  # capped
        assert policy.delay(10) == pytest.approx(0.35)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        for retry in range(4):
            first = policy.delay(retry, token="process")
            assert first == policy.delay(retry, token="process")
            raw = min(policy.max_delay, policy.base_delay * 2**retry)
            assert 0.5 * raw <= first < raw

    def test_jitter_varies_with_seed_and_token(self):
        a = RetryPolicy(seed=0).delay(0, token="x")
        b = RetryPolicy(seed=1).delay(0, token="x")
        c = RetryPolicy(seed=0).delay(0, token="y")
        assert len({a, b, c}) == 3


class TestClassification:
    def test_transient_failures(self):
        for exc in (
            InjectedFault("x"),
            BrokenProcessPool("x"),
            pickle.PicklingError("x"),
            EOFError(),
            ConnectionResetError(),
            TimeoutError(),
            CertificationError("x"),
        ):
            assert is_transient(exc), exc

    def test_deterministic_failures(self):
        for exc in (
            SchedulingError("x"),
            InvalidChainError("x"),
            InfeasibleScheduleError("x"),
            ValueError("x"),
            KeyError("x"),
        ):
            assert not is_transient(exc), exc


class TestConfig:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(InvalidParameterError):
            ResilienceConfig(timeout=0.0)

    def test_engine_accepts_bool_shorthand(self):
        engine = CampaignEngine(jobs=1, resilience=True)
        assert engine.resilience is not None
        assert CampaignEngine(jobs=1, resilience=False).resilience is None


class TestRetryRecovery:
    def test_transient_fault_retries_to_bitwise_recovery(self, tmp_path):
        chains = _chains(4)
        resources = Resources(2, 2)
        reference = _reference(chains, resources)
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise", times=1),),
            state_dir=str(tmp_path),
        )
        engine = CampaignEngine(
            jobs=2,
            backend="thread",
            memo=False,
            resilience=ResilienceConfig(retry=_FAST),
            faults=plan,
        )
        arrays = engine.solve_instances(chains, resources, ("fertac",))
        _assert_same_arrays(arrays, reference)
        report = engine.last_report
        assert report is not None
        assert report.retries >= 1
        assert report.quarantined == 0
        assert engine.failures == ()

    def test_worker_crash_rebuilds_process_pool(self, tmp_path):
        """A hard-killed worker (BrokenProcessPool) is retried, not fatal."""
        chains = _chains(4)
        resources = Resources(2, 2)
        reference = _reference(chains, resources)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="crash",
                    fingerprint=_fingerprint(chains[1]),
                    tiers=("process",),
                    times=1,
                ),
            ),
            state_dir=str(tmp_path),
        )
        engine = CampaignEngine(
            jobs=2,
            backend="process",
            memo=False,
            resilience=ResilienceConfig(retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)),
            faults=plan,
        )
        arrays = engine.solve_instances(chains, resources, ("fertac",))
        _assert_same_arrays(arrays, reference)
        report = engine.last_report
        assert report is not None
        assert report.retries >= 1
        assert report.quarantined == 0

    def test_hang_is_abandoned_at_soft_deadline(self, tmp_path):
        chains = _chains(3)
        resources = Resources(2, 2)
        reference = _reference(chains, resources)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="hang",
                    fingerprint=_fingerprint(chains[0]),
                    tiers=("thread",),
                    seconds=5.0,
                    times=1,
                ),
            ),
            state_dir=str(tmp_path),
        )
        engine = CampaignEngine(
            jobs=3,
            backend="thread",
            memo=False,
            chunk_size=1,
            resilience=ResilienceConfig(retry=_FAST, timeout=0.25),
            faults=plan,
        )
        arrays = engine.solve_instances(chains, resources, ("fertac",))
        _assert_same_arrays(arrays, reference)
        report = engine.last_report
        assert report is not None
        assert report.timeouts >= 1
        assert report.quarantined == 0


class TestDegradation:
    def test_persistent_process_failure_degrades_to_thread(self, tmp_path):
        chains = _chains(3)
        resources = Resources(2, 2)
        reference = _reference(chains, resources)
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise", tiers=("process",), times=50),),
            state_dir=str(tmp_path),
        )
        engine = CampaignEngine(
            jobs=2,
            backend="process",
            memo=False,
            resilience=ResilienceConfig(retry=_FAST),
            faults=plan,
        )
        arrays = engine.solve_instances(chains, resources, ("fertac",))
        _assert_same_arrays(arrays, reference)
        report = engine.last_report
        assert report is not None
        assert report.degradations >= 1
        assert report.quarantined == 0

    def test_degrade_false_skips_ladder(self, tmp_path):
        """Without degradation the thread rung is skipped: process → serial."""
        chains = _chains(2)
        resources = Resources(2, 2)
        reference = _reference(chains, resources)
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise", tiers=("process", "thread"), times=50),),
            state_dir=str(tmp_path),
        )
        engine = CampaignEngine(
            jobs=2,
            backend="process",
            memo=False,
            resilience=ResilienceConfig(retry=_FAST, degrade=False),
            faults=plan,
        )
        arrays = engine.solve_instances(chains, resources, ("fertac",))
        # The serial rung is fault-free here, so everything still recovers.
        _assert_same_arrays(arrays, reference)


class TestQuarantine:
    def test_deterministic_bug_is_quarantined_with_sentinels(self, tmp_path):
        chains = _chains(4)
        resources = Resources(2, 2)
        reference = _reference(chains, resources)
        bad = _fingerprint(chains[2])
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="bug", fingerprint=bad, strategy="fertac", times=50),
            ),
            state_dir=str(tmp_path),
        )
        engine = CampaignEngine(
            jobs=1,
            backend="serial",
            memo=False,
            resilience=ResilienceConfig(retry=_FAST),
            faults=plan,
        )
        arrays = engine.solve_instances(chains, resources, ("fertac",))

        # The failed cell keeps its sentinels ...
        assert np.isnan(arrays["fertac"].periods[2])
        assert arrays["fertac"].big_used[2] == -1
        assert arrays["fertac"].little_used[2] == -1
        # ... and every other cell matches the fault-free reference.
        for i in (0, 1, 3):
            assert arrays["fertac"].periods[i] == reference["fertac"].periods[i]

        report = engine.last_report
        assert report is not None
        assert report.quarantined == 1
        (record,) = report.failures
        assert record.index == 2
        assert record.fingerprint == bad
        assert record.strategy == "fertac"
        assert record.error_type == "SchedulingError"
        assert record.tier == "serial"
        # Deterministic failures skip the retry budget: one attempt only.
        assert record.attempts == 1
        assert engine.failures == (record,)
        engine.clear_failures()
        assert engine.failures == ()

    def test_exhausted_transient_fault_is_quarantined(self, tmp_path):
        """A transient fault that never stops firing ends in quarantine."""
        chains = _chains(2)
        resources = Resources(2, 2)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="raise", fingerprint=_fingerprint(chains[0]), times=500
                ),
            ),
            state_dir=str(tmp_path),
        )
        engine = CampaignEngine(
            jobs=1,
            backend="serial",
            memo=False,
            resilience=ResilienceConfig(retry=_FAST),
            faults=plan,
        )
        arrays = engine.solve_instances(chains, resources, ("fertac",))
        assert np.isnan(arrays["fertac"].periods[0])
        assert np.isfinite(arrays["fertac"].periods[1])
        (record,) = engine.failures
        assert record.error_type == "InjectedFault"
        assert record.attempts == _FAST.max_attempts


class TestCorruptionRecovery:
    def test_certify_catches_corrupt_then_resolve_recovers(self, tmp_path):
        """--certify turns silent corruption into a recoverable transient."""
        chains = _chains(3)
        resources = Resources(2, 2)
        reference = _reference(chains, resources)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="corrupt",
                    fingerprint=_fingerprint(chains[1]),
                    times=1,
                ),
            ),
            state_dir=str(tmp_path),
        )
        engine = CampaignEngine(
            jobs=1,
            backend="serial",
            memo=False,
            resilience=ResilienceConfig(retry=_FAST),
            faults=plan,
        )
        arrays = engine.solve_instances(
            chains, resources, ("fertac",), certify=True
        )
        _assert_same_arrays(arrays, reference)
        report = engine.last_report
        assert report is not None
        assert report.retries >= 1
        assert report.quarantined == 0

    def test_without_certify_corruption_lands_in_arrays(self, tmp_path):
        """Control: no audit means the tampered claim is recorded as-is."""
        chains = _chains(2)
        resources = Resources(2, 2)
        reference = _reference(chains, resources)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="corrupt",
                    fingerprint=_fingerprint(chains[0]),
                    factor=0.5,
                    times=1,
                ),
            ),
            state_dir=str(tmp_path),
        )
        engine = CampaignEngine(
            jobs=1,
            backend="serial",
            memo=False,
            resilience=ResilienceConfig(retry=_FAST),
            faults=plan,
        )
        arrays = engine.solve_instances(chains, resources, ("fertac",))
        assert arrays["fertac"].periods[0] == pytest.approx(
            reference["fertac"].periods[0] * 0.5
        )
