"""Differential oracle: herad vs herad_reference vs independent certificates.

Three mutually-independent implementations must agree on every instance:
the vectorized DP (:func:`repro.core.herad`), the literal pseudocode
transcription (:func:`repro.core.herad_reference`), and the certificate
auditor's re-derived period (:mod:`repro.core.certify`) — with the greedy
heuristics' solutions certifying as valid (but not necessarily optimal)
schedules on the same instances.
"""

from __future__ import annotations

import math

import pytest

from repro.core import (
    Resources,
    certify_outcome,
    certify_solution,
    get_info,
    herad,
    herad_reference,
    strategy_names,
)
from repro.core.chain_stats import ChainProfile
from repro.workloads.synthetic import GeneratorConfig, chain_batch

BUDGETS = (Resources(2, 2), Resources(3, 5), Resources(6, 2))


def _instances(num_chains: int = 12, num_tasks: int = 8, seed: int = 7):
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=0.5)
    return [
        ChainProfile(chain)
        for chain in chain_batch(num_chains, config, seed=seed)
    ]


class TestDifferentialOracle:
    @pytest.mark.parametrize("resources", BUDGETS, ids=str)
    def test_herad_vs_reference_vs_certificates(self, resources):
        for profile in _instances():
            fast = herad(profile, resources)
            slow_solution = herad_reference(profile, resources)
            slow_period = slow_solution.period(profile)
            assert math.isclose(fast.period, slow_period, rel_tol=1e-9), (
                f"DP and reference disagree on {profile.chain!r}"
            )
            fast_report = certify_outcome(
                fast, profile, resources, optimal=True, context="herad"
            )
            slow_report = certify_solution(
                slow_solution,
                profile,
                resources,
                claimed_period=slow_period,
                optimal=True,
                context="herad_reference",
            )
            assert math.isclose(
                fast_report.period, slow_report.period, rel_tol=1e-9
            )

    @pytest.mark.parametrize("resources", BUDGETS[:2], ids=str)
    def test_every_strategy_certifies_on_random_instances(self, resources):
        for profile in _instances(num_chains=6):
            for name in strategy_names():
                info = get_info(name)
                outcome = info.func(profile, resources)
                report = certify_outcome(
                    outcome,
                    profile,
                    resources,
                    optimal=info.optimal,
                    context=name,
                )
                assert report.ok

    def test_heuristics_never_beat_the_optimum(self):
        resources = Resources(3, 3)
        for profile in _instances(num_chains=8):
            optimum = herad(profile, resources).period
            for name in ("fertac", "2catac"):
                heuristic = get_info(name).func(profile, resources).period
                assert heuristic >= optimum * (1 - 1e-9)
