"""End-to-end flows: schedule -> pipeline -> execution -> throughput."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.registry import PAPER_ORDER, run_strategies
from repro.core.types import Resources
from repro.platform.presets import MAC_STUDIO
from repro.sdr.dvbs2 import dvbs2_chain
from repro.sdr.framing import DVBS2_NORMAL_R8_9
from repro.streampu.overheads import CalibratedOverhead, NoOverhead
from repro.streampu.pipeline import PipelineSpec
from repro.streampu.runtime import PipelineRuntime
from repro.streampu.simulator import simulate_pipeline
from repro.workloads.synthetic import GeneratorConfig, random_chain


class TestScheduleToSimulation:
    def test_all_strategies_execute_on_dvbs2(self):
        chain = dvbs2_chain(MAC_STUDIO)
        resources = Resources(8, 2)
        outcomes = run_strategies(chain, resources)
        for name, outcome in outcomes.items():
            spec = PipelineSpec.from_solution(outcome.solution, chain)
            result = simulate_pipeline(spec, num_frames=600)
            assert result.report.measured_period == pytest.approx(
                outcome.period, rel=0.05
            ), name

    def test_optimal_schedule_beats_heuristics_in_simulation(self):
        chain = dvbs2_chain(MAC_STUDIO)
        resources = Resources(8, 2)
        outcomes = run_strategies(chain, resources)
        throughput = {}
        for name, outcome in outcomes.items():
            spec = PipelineSpec.from_solution(outcome.solution, chain)
            sim = simulate_pipeline(spec, num_frames=600)
            throughput[name] = sim.report.fps(interframe=4)
        assert throughput["herad"] >= max(
            v for k, v in throughput.items() if k != "herad"
        ) * 0.99

    def test_calibrated_overhead_slows_all_strategies(self):
        chain = dvbs2_chain(MAC_STUDIO)
        outcomes = run_strategies(chain, Resources(8, 2), names=["herad"])
        spec = PipelineSpec.from_solution(outcomes["herad"].solution, chain)
        ideal = simulate_pipeline(spec, num_frames=600, overhead=NoOverhead())
        real = simulate_pipeline(
            spec, num_frames=600, overhead=CalibratedOverhead()
        )
        gap = real.report.measured_period / ideal.report.measured_period
        # Gap magnitude in the paper's observed 1-20% band.
        assert 1.0 < gap < 1.25

    def test_mbps_pipeline_end_to_end(self):
        chain = dvbs2_chain(MAC_STUDIO)
        outcomes = run_strategies(chain, Resources(16, 4), names=["herad"])
        spec = PipelineSpec.from_solution(outcomes["herad"].solution, chain)
        sim = simulate_pipeline(spec, num_frames=800)
        mbps = sim.report.mbps(DVBS2_NORMAL_R8_9.info_bits, interframe=4)
        # Paper: 59.9 Mb/s expected.
        assert mbps == pytest.approx(59.9, rel=0.03)


class TestScheduleToThreadedRuntime:
    def test_synthetic_chain_runs_threaded(self):
        rng = np.random.default_rng(0)
        chain = random_chain(
            rng, GeneratorConfig(num_tasks=6, stateless_ratio=0.5)
        )
        profile = ChainProfile(chain)
        outcomes = run_strategies(profile, Resources(2, 2), names=["herad"])
        runtime = PipelineRuntime.from_solution(
            outcomes["herad"].solution, profile, time_scale=2e-6
        )
        result = runtime.run(num_frames=40)
        assert result.payloads == tuple(range(40))
        assert result.report.measured_period > 0


class TestStrategyConsistency:
    def test_registry_order_is_table_order(self):
        assert PAPER_ORDER[0] == "herad"

    @pytest.mark.parametrize("sr", [0.2, 0.8])
    def test_campaign_smoke_ordering(self, sr):
        """On any instance, OTAC(L) can never beat HeRAD, and the average
        ranking follows the paper: HeRAD <= 2CATAC <= ... (on average)."""
        rng = np.random.default_rng(int(sr * 100))
        config = GeneratorConfig(num_tasks=10, stateless_ratio=sr)
        resources = Resources(5, 5)
        sums = {name: 0.0 for name in PAPER_ORDER}
        for _ in range(10):
            profile = ChainProfile(random_chain(rng, config))
            outcomes = run_strategies(profile, resources)
            for name, outcome in outcomes.items():
                sums[name] += outcome.period
        assert sums["herad"] <= sums["2catac"] + 1e-9
        assert sums["herad"] <= sums["fertac"] + 1e-9
        assert sums["herad"] <= sums["otac_b"] + 1e-9
        assert sums["herad"] <= sums["otac_l"] + 1e-9
