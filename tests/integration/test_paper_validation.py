"""Validation against the paper's own published numbers.

These tests tie the reproduction to the paper: with the Table III latencies
as input, the schedulers must reproduce the Table II expected periods (the
strongest end-to-end check available without the physical hardware).
"""

from __future__ import annotations

import pytest

from repro.core.fertac import fertac
from repro.core.herad import herad
from repro.core.otac import otac_big, otac_little
from repro.core.twocatac import twocatac
from repro.core.types import Resources
from repro.sdr.dvbs2 import dvbs2_mac_studio_chain, dvbs2_x7ti_chain
from repro.sdr.framing import fps_from_period_us, mbps_from_fps


@pytest.fixture(scope="module")
def mac_chain():
    return dvbs2_mac_studio_chain()


@pytest.fixture(scope="module")
def x7_chain():
    return dvbs2_x7ti_chain()


class TestHeradExpectedPeriods:
    """HeRAD is optimal: its periods must equal the paper's exactly
    (the paper prints one decimal; S1's 1128.7 is 9031.0/8 = 1128.875
    truncated)."""

    def test_mac_half(self, mac_chain):
        assert herad(mac_chain, Resources(8, 2)).period == pytest.approx(
            1128.7, abs=0.2
        )

    def test_mac_full(self, mac_chain):
        # Limited by the sequential Sync. Timing task: exactly 950.6 us.
        assert herad(mac_chain, Resources(16, 4)).period == pytest.approx(
            950.6, abs=0.05
        )

    def test_x7_half(self, x7_chain):
        # Limited by the BCH decoder over 3 cores: 8166.2 / 3.
        assert herad(x7_chain, Resources(3, 4)).period == pytest.approx(
            8166.2 / 3, abs=0.05
        )

    def test_x7_full(self, x7_chain):
        # Limited by the sequential Sync. Timing task: exactly 1341.9 us.
        assert herad(x7_chain, Resources(6, 8)).period == pytest.approx(
            1341.9, abs=0.05
        )


class TestHeuristicExpectedPeriods:
    """The greedy strategies reproduce their paper periods too."""

    @pytest.mark.parametrize(
        "resources,expected",
        [(Resources(8, 2), 1154.3), (Resources(16, 4), 950.6)],
    )
    def test_2catac_mac(self, mac_chain, resources, expected):
        assert twocatac(mac_chain, resources).period == pytest.approx(
            expected, abs=0.5
        )

    @pytest.mark.parametrize(
        "resources,expected",
        [(Resources(3, 4), 2722.1), (Resources(6, 8), 1341.9)],
    )
    def test_2catac_x7(self, x7_chain, resources, expected):
        assert twocatac(x7_chain, resources).period == pytest.approx(
            expected, abs=0.5
        )

    @pytest.mark.parametrize(
        "resources,expected",
        [(Resources(8, 2), 1265.6), (Resources(16, 4), 950.6)],
    )
    def test_fertac_mac(self, mac_chain, resources, expected):
        assert fertac(mac_chain, resources).period == pytest.approx(
            expected, abs=0.5
        )

    @pytest.mark.parametrize(
        "resources,expected",
        [(Resources(3, 4), 2867.0), (Resources(6, 8), 1552.3)],
    )
    def test_fertac_x7(self, x7_chain, resources, expected):
        assert fertac(x7_chain, resources).period == pytest.approx(
            expected, abs=0.5
        )

    @pytest.mark.parametrize(
        "resources,expected",
        [(Resources(8, 2), 1442.9), (Resources(16, 4), 950.6)],
    )
    def test_otac_b_mac(self, mac_chain, resources, expected):
        assert otac_big(mac_chain, resources).period == pytest.approx(
            expected, abs=0.5
        )

    @pytest.mark.parametrize(
        "resources,expected",
        [(Resources(3, 4), 6209.0), (Resources(6, 8), 2867.0)],
    )
    def test_otac_b_x7(self, x7_chain, resources, expected):
        assert otac_big(x7_chain, resources).period == pytest.approx(
            expected, abs=0.5
        )

    @pytest.mark.parametrize(
        "resources,expected",
        [(Resources(8, 2), 11440.0), (Resources(16, 4), 6470.9)],
    )
    def test_otac_l_mac(self, mac_chain, resources, expected):
        assert otac_little(mac_chain, resources).period == pytest.approx(
            expected, abs=0.5
        )

    @pytest.mark.parametrize(
        "resources,expected",
        [(Resources(3, 4), 7490.3), (Resources(6, 8), 3745.1)],
    )
    def test_otac_l_x7(self, x7_chain, resources, expected):
        assert otac_little(x7_chain, resources).period == pytest.approx(
            expected, abs=0.5
        )


class TestThroughputConversions:
    """Period -> FPS -> Mb/s reproduces the paper's Sim columns."""

    @pytest.mark.parametrize(
        "period,interframe,fps,mbps",
        [
            (1128.7, 4, 3544, 50.4),
            (950.6, 4, 4208, 59.9),
            (2722.1, 8, 2939, 41.8),
            (1341.9, 8, 5962, 84.8),
            (11440.0, 4, 350, 5.0),
        ],
    )
    def test_sim_columns(self, period, interframe, fps, mbps):
        got_fps = fps_from_period_us(period, interframe)
        assert got_fps == pytest.approx(fps, abs=1.5)
        assert mbps_from_fps(got_fps) == pytest.approx(mbps, abs=0.1)


class TestScheduleShapes:
    def test_mac_half_herad_matches_s1_exactly(self, mac_chain):
        """HeRAD's (8B, 2L) decomposition reproduces S1 stage for stage."""
        solution = herad(mac_chain, Resources(8, 2)).solution
        assert (
            solution.render()
            == "(5,1B),(1,1B),(9,1B),(1,2B),(2,1L),(1,3B),(4,1L)"
        )

    def test_x7_full_herad_matches_s16_structure(self, x7_chain):
        """The (6B, 8L) optimum has consecutive replicated stages on
        different core types — the schedule shape that required the
        StreamPU v1.6.0 extension."""
        solution = herad(x7_chain, Resources(6, 8)).solution
        profile_pairs = [
            (s.core_type.symbol, s.cores, s.is_replicable(x7_chain))
            for s in solution
        ]
        replicated = [
            (sym, cores)
            for sym, cores, rep in profile_pairs
            if rep and cores > 1
        ]
        assert len(replicated) >= 2
        assert len({sym for sym, _ in replicated}) == 2

    def test_fertac_x7_half_matches_s13(self, x7_chain):
        solution = fertac(x7_chain, Resources(3, 4)).solution
        assert solution.render() == "(5,1L),(3,1L),(7,1L),(4,3B),(4,1L)"

    def test_otac_b_x7_half_matches_s14(self, x7_chain):
        solution = otac_big(x7_chain, Resources(3, 4)).solution
        assert solution.render() == "(18,1B),(1,1B),(4,1B)"
