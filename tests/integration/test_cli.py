"""Tests for the CLI (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_all_experiments():
    parser = build_parser()
    for name in (
        "table1",
        "table2",
        "table3",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "all",
    ):
        args = parser.parse_args([name])
        assert args.experiment == name


def test_parser_rejects_unknown():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["table9"])


def test_table3_runs(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out
    assert "tau_19" in out


def test_fig2_small_campaign(capsys):
    assert main(["fig2", "--chains", "8"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out


def test_out_directory_written(tmp_path, capsys):
    assert main(["table3", "--out", str(tmp_path)]) == 0
    report = tmp_path / "table3.txt"
    assert report.exists()
    assert "Table III" in report.read_text()


def test_seed_flag_changes_campaign(capsys):
    main(["fig2", "--chains", "6", "--seed", "1"])
    first = capsys.readouterr().out
    main(["fig2", "--chains", "6", "--seed", "2"])
    second = capsys.readouterr().out
    assert first != second


def test_certify_flag_defaults_off():
    parser = build_parser()
    assert parser.parse_args(["table1"]).certify is False
    assert parser.parse_args(["table1", "--certify"]).certify is True


def test_certified_run_matches_plain(capsys):
    assert main(["fig2", "--chains", "6"]) == 0
    plain = capsys.readouterr().out
    assert main(["fig2", "--chains", "6", "--certify"]) == 0
    audited = capsys.readouterr().out
    assert plain == audited


def test_lint_subcommand_reports_clean_tree(capsys):
    from pathlib import Path

    import repro

    package_root = Path(repro.__file__).parent
    assert main(["lint", str(package_root)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_resilience_flags_default_off():
    parser = build_parser()
    args = parser.parse_args(["table1"])
    assert args.resume is None
    assert args.retries is None
    assert args.timeout is None


def test_resilience_flags_parse():
    parser = build_parser()
    args = parser.parse_args(
        [
            "table1",
            "--resume", "run.jsonl",
            "--retries", "5",
            "--timeout", "30",
        ]
    )
    assert str(args.resume) == "run.jsonl"
    assert args.retries == 5
    assert args.timeout == 30.0


def test_retries_rejects_nonpositive():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["table1", "--retries", "0"])


def test_hardened_run_matches_plain(capsys, tmp_path):
    """--retries/--timeout/--resume must not change fault-free output."""
    from repro.engine import reset_default_engine

    assert main(["fig2", "--chains", "6"]) == 0
    plain = capsys.readouterr().out
    journal = tmp_path / "run.jsonl"
    # Drop the shared memo so the hardened run actually solves (and journals).
    reset_default_engine()
    assert (
        main(
            [
                "fig2", "--chains", "6",
                "--retries", "3",
                "--timeout", "120",
                "--resume", str(journal),
            ]
        )
        == 0
    )
    hardened = capsys.readouterr().out
    assert plain == hardened
    assert journal.exists() and journal.stat().st_size > 0

    # Second run resumes from the journal and prints the same report.
    assert main(["fig2", "--chains", "6", "--resume", str(journal)]) == 0
    resumed = capsys.readouterr().out
    assert resumed == plain


def test_obs_flags_default_off():
    parser = build_parser()
    args = parser.parse_args(["table1"])
    assert args.trace is None
    assert args.flamegraph is None
    assert args.metrics is False
    assert args.log_level == "info"


def test_log_level_parses_and_rejects_unknown():
    parser = build_parser()
    assert parser.parse_args(["table1", "--log-level", "debug"]).log_level == "debug"
    with pytest.raises(SystemExit):
        parser.parse_args(["table1", "--log-level", "verbose"])


def test_traced_run_matches_plain_and_writes_valid_trace(capsys, tmp_path):
    """--trace must not change stdout, and must emit Chrome-valid JSON."""
    import json

    from repro.obs import validate_chrome_trace

    assert main(["fig2", "--chains", "6"]) == 0
    plain = capsys.readouterr().out
    trace = tmp_path / "trace.json"
    assert main(["fig2", "--chains", "6", "--trace", str(trace), "--jobs", "2"]) == 0
    traced = capsys.readouterr().out
    assert traced == plain
    document = json.loads(trace.read_text())
    assert validate_chrome_trace(document) == []
    names = {event["name"] for event in document["traceEvents"]}
    assert "experiment" in names and "campaign" in names


class TestSolveSubcommand:
    def test_cores_spec_parses_labels_and_counts(self):
        parser = build_parser()
        args = parser.parse_args(["solve", "--cores", "big=8,little=8,mid=4"])
        resources, labels = args.cores
        assert resources.counts == (8, 8, 4)
        assert labels == ("big", "little", "mid")

    def test_cores_spec_accepts_bare_counts(self):
        parser = build_parser()
        resources, labels = parser.parse_args(
            ["solve", "--cores", "6,8"]
        ).cores
        assert resources.counts == (6, 8)
        assert labels == ("big", "little")

    def test_cores_spec_rejects_garbage(self):
        parser = build_parser()
        for spec in ("", "big=x", "big=-1", "=3", "0,0"):
            with pytest.raises(SystemExit):
                parser.parse_args(["solve", "--cores", spec])

    def test_two_type_solve_runs(self, capsys):
        assert main(["solve", "--cores", "big=4,little=4", "--chains", "2"]) == 0
        out = capsys.readouterr().out
        assert "platform: big=4, little=4  (k=2)" in out
        assert out.count("period=") == 2

    def test_ktype_solve_certifies(self, capsys):
        assert (
            main(
                [
                    "solve", "--cores", "big=3,little=3,lpe=2",
                    "--chains", "2", "--certify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "(k=3)" in out
        assert out.count("[certified]") == 2

    def test_heuristics_run_on_ktype_platform(self, capsys):
        assert (
            main(
                [
                    "solve", "--cores", "3,3,2",
                    "--strategy", "fertac", "--strategy", "2catac",
                    "--chains", "2", "--certify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("fertac") == 2 and out.count("2catac") == 2

    def test_two_type_only_strategy_rejected_on_ktype(self, capsys):
        assert (
            main(["solve", "--cores", "3,3,2", "--strategy", "herad"]) == 2
        )

    def test_unknown_strategy_rejected(self):
        assert (
            main(["solve", "--cores", "4,4", "--strategy", "nope"]) == 2
        )


def test_metrics_flag_prints_run_report(capsys):
    from repro.engine import reset_default_engine

    # Drop the shared memo so the report shows real solves, not just replay.
    reset_default_engine()
    assert main(["fig2", "--chains", "6", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "== Run report ==" in out
    assert "memo:" in out
    assert "failures: none" in out


def test_flamegraph_flag_writes_validating_collapsed_stacks(capsys, tmp_path):
    """--flamegraph must not change stdout and must pass the structural oracle."""
    from repro.obs import validate_flamegraph
    from repro.obs.context import current

    assert main(["fig2", "--chains", "6"]) == 0
    plain = capsys.readouterr().out
    folded = tmp_path / "run.folded"
    assert main(["fig2", "--chains", "6", "--flamegraph", str(folded)]) == 0
    assert capsys.readouterr().out == plain
    assert not current().active  # the obs context must not leak out of main()
    lines = folded.read_text().splitlines()
    assert lines
    # Grammar-only validation: the span buffer is gone by the time main()
    # returns, so rebuild the root set from the lines themselves.
    roots = {line.split(";", 1)[0].split(" ", 1)[0] for line in lines}
    assert "experiment" in roots


class TestBenchSubcommand:
    @staticmethod
    def _reports(tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        candidate = tmp_path / "candidate.json"
        tolerances = tmp_path / "tolerances.json"
        baseline.write_text(json.dumps({"speedup": {"memo": 10.0}, "bad": False}))
        candidate.write_text(json.dumps({"speedup": {"memo": 9.5}, "bad": False}))
        tolerances.write_text(
            json.dumps(
                {
                    "checks": [
                        {"metric": "bad", "kind": "flag_false"},
                        {
                            "metric": "speedup.memo",
                            "kind": "higher_better",
                            "min_factor": 0.6,
                        },
                    ]
                }
            )
        )
        return baseline, candidate, tolerances

    def test_compare_passes_and_exits_zero(self, capsys, tmp_path):
        baseline, candidate, tolerances = self._reports(tmp_path)
        code = main(
            [
                "bench", "compare",
                "--baseline", str(baseline),
                "--candidate", str(candidate),
                "--tolerance-file", str(tolerances),
            ]
        )
        assert code == 0
        assert "all passed" in capsys.readouterr().out

    def test_compare_exits_one_on_regression(self, capsys, tmp_path):
        import json

        baseline, candidate, tolerances = self._reports(tmp_path)
        candidate.write_text(json.dumps({"speedup": {"memo": 5.0}, "bad": False}))
        code = main(
            [
                "bench", "compare",
                "--baseline", str(baseline),
                "--candidate", str(candidate),
                "--tolerance-file", str(tolerances),
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_exits_two_on_malformed_input(self, tmp_path):
        baseline, candidate, tolerances = self._reports(tmp_path)
        code = main(
            [
                "bench", "compare",
                "--baseline", str(tmp_path / "missing.json"),
                "--candidate", str(candidate),
                "--tolerance-file", str(tolerances),
            ]
        )
        assert code == 2
