"""Every shipped example must run cleanly (subprocess smoke tests)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, timeout: float = 180.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_directory_populated():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship more


def test_quickstart_output():
    out = run_example("quickstart.py")
    assert "HeRAD" in out and "FERTAC" in out
    assert "period" in out


def test_dvbs2_receiver_output():
    out = run_example("dvbs2_receiver.py")
    assert "Mac Studio" in out and "X7 Ti" in out
    assert "Mb/s" in out


def test_energy_sweep_output():
    out = run_example("energy_aware_sweep.py")
    assert "P(HeRAD)" in out and "power" in out


def test_custom_strategy_output():
    out = run_example("custom_strategy.py")
    assert "BIGFIRST" in out


def test_functional_transceiver_output():
    out = run_example("functional_transceiver.py")
    assert "Bit errors: 0" in out
    assert "error-free" in out


def test_pipeline_visualization_output():
    out = run_example("pipeline_visualization.py")
    assert "Gantt" in out and "Pareto" in out


def test_static_vs_dynamic_output():
    out = run_example("static_vs_dynamic.py")
    assert "dynamic" in out and "STATIC" in out


def test_streaming_runtime_output():
    out = run_example("streaming_runtime.py")
    assert "checksums" in out
