"""Tests for repro.core.power (power models and the Pareto helper)."""

from __future__ import annotations

import pytest

from repro.core.herad import herad
from repro.core.power import PowerModel, pareto_front, solution_power
from repro.core.solution import Solution
from repro.core.stage import Stage
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources


@pytest.fixture
def chain():
    return TaskChain.from_weights(
        [10, 10], [20, 20], [False, False]
    )


class TestPowerModel:
    def test_defaults(self):
        model = PowerModel()
        assert model.active(CoreType.BIG) == 3.0
        assert model.active(CoreType.LITTLE) == 1.0
        assert model.idle(CoreType.BIG) == 0.3
        assert model.idle(CoreType.LITTLE) == 0.1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(big_active=-1.0)


class TestSolutionPower:
    def test_fully_busy_single_stage(self, chain):
        sol = Solution([Stage(0, 1, 1, CoreType.BIG)])
        report = solution_power(sol, chain)
        # One big core busy 100% of the time.
        assert report.power == pytest.approx(3.0)
        assert report.busy_fraction == pytest.approx(1.0)
        assert report.period == 20.0

    def test_idle_fraction_counted(self, chain):
        # Two balanced big stages: each busy 10/10 = 1.0... use unbalanced.
        unbalanced = TaskChain.from_weights(
            [10, 5], [20, 10], [False, False]
        )
        sol = Solution(
            [Stage(0, 0, 1, CoreType.BIG), Stage(1, 1, 1, CoreType.BIG)]
        )
        report = solution_power(sol, unbalanced)
        # Stage 1: busy 1.0; stage 2: busy 0.5 (idle draws 0.3).
        expected = 3.0 + (0.5 * 3.0 + 0.5 * 0.3)
        assert report.power == pytest.approx(expected)
        assert report.busy_fraction == pytest.approx(0.75)

    def test_little_cores_cheaper(self, chain):
        big = Solution([Stage(0, 1, 1, CoreType.BIG)])
        little = Solution([Stage(0, 1, 1, CoreType.LITTLE)])
        assert (
            solution_power(little, chain).power
            < solution_power(big, chain).power
        )

    def test_empty_rejected(self, chain):
        with pytest.raises(ValueError):
            solution_power(Solution.empty(), chain)

    def test_custom_model(self, chain):
        sol = Solution([Stage(0, 1, 1, CoreType.LITTLE)])
        model = PowerModel(little_active=7.0)
        assert solution_power(sol, chain, model).power == pytest.approx(7.0)


class TestKTypePowerModel:
    def test_extra_draws_cover_third_type(self):
        model = PowerModel(extra_active=(0.5,), extra_idle=(0.05,))
        assert model.ktype == 3
        assert model.active(2) == 0.5
        assert model.idle(2) == 0.05
        # The two-type accessors are untouched.
        assert model.active(CoreType.BIG) == 3.0
        assert model.idle(CoreType.LITTLE) == 0.1

    def test_uncovered_type_rejected(self):
        model = PowerModel(extra_active=(0.5,), extra_idle=(0.05,))
        with pytest.raises(ValueError):
            model.active(3)
        with pytest.raises(ValueError):
            PowerModel().idle(2)

    def test_mismatched_extra_lengths_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(extra_active=(0.5, 0.4), extra_idle=(0.05,))

    def test_negative_extra_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(extra_active=(-0.5,), extra_idle=(0.05,))

    def test_solution_power_on_third_type(self):
        chain = TaskChain.from_weight_matrix(
            [[10.0, 10.0], [20.0, 20.0], [40.0, 40.0]], [False, False]
        )
        model = PowerModel(extra_active=(0.5,), extra_idle=(0.05,))
        sol = Solution([Stage(0, 0, 1, 2), Stage(1, 1, 1, 2)])
        report = solution_power(sol, chain, model)
        # Both type-2 stages weigh 40 -> fully busy at P = 40.
        assert report.period == 40.0
        assert report.power == pytest.approx(1.0)
        assert report.busy_fraction == pytest.approx(1.0)

    def test_pareto_front_across_type_choices(self):
        chain = TaskChain.from_weight_matrix(
            [[10.0], [20.0], [40.0]], [True]
        )
        model = PowerModel(extra_active=(0.5,), extra_idle=(0.05,))
        candidates = [
            ("big", Solution([Stage(0, 0, 1, 0)])),
            ("little", Solution([Stage(0, 0, 1, 1)])),
            ("lpe", Solution([Stage(0, 0, 1, 2)])),
        ]
        front = pareto_front(candidates, chain, model)
        labels = [label for label, _ in front]
        # Strictly faster-and-hungrier candidates: all three survive, in
        # increasing period order (big fastest, lpe cheapest).
        assert labels == ["big", "little", "lpe"]


class TestParetoFront:
    def test_dominated_budget_removed(self):
        chain = TaskChain.from_weights(
            [8, 8, 8, 8], [16, 16, 16, 16], [True] * 4
        )
        candidates = [
            (f"({big},{little})", herad(chain, Resources(big, little)).solution)
            for big, little in [(1, 0), (2, 0), (4, 0), (0, 2)]
        ]
        front = pareto_front(candidates, chain)
        labels = [label for label, _ in front]
        # More big cores -> faster but hungrier: all big-only budgets are
        # mutually non-dominated; the little-only budget has the lowest
        # power.
        assert "(4,0)" in labels  # fastest
        assert "(0,2)" in labels  # cheapest
        periods = [r.period for _, r in front]
        assert periods == sorted(periods)

    def test_duplicate_schedule_not_dominated_by_itself(self, chain):
        sol = Solution([Stage(0, 1, 1, CoreType.BIG)])
        front = pareto_front([("a", sol), ("b", sol)], chain)
        # Equal candidates do not dominate each other (strictness).
        assert len(front) == 2
