"""Tests for repro.core.otac (the homogeneous baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_optimal
from repro.core.chain_stats import ChainProfile
from repro.core.errors import InvalidPlatformError
from repro.core.otac import otac, otac_big, otac_little
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources
from repro.workloads.synthetic import GeneratorConfig, random_chain


class TestBasics:
    def test_uses_only_requested_type(self, simple_profile):
        for core_type in (CoreType.BIG, CoreType.LITTLE):
            outcome = otac(simple_profile, 3, core_type)
            assert outcome.feasible
            assert all(s.core_type is core_type for s in outcome.solution)

    def test_single_core_is_whole_chain(self, simple_profile):
        outcome = otac(simple_profile, 1, CoreType.BIG)
        assert outcome.solution.num_stages == 1
        assert outcome.period == simple_profile.total_weight(CoreType.BIG)

    def test_zero_cores_rejected(self, simple_profile):
        with pytest.raises(InvalidPlatformError):
            otac(simple_profile, 0, CoreType.BIG)

    def test_wrappers_use_budget_halves(self, simple_profile):
        resources = Resources(3, 2)
        big = otac_big(simple_profile, resources)
        little = otac_little(simple_profile, resources)
        assert big.solution.core_usage().little == 0
        assert little.solution.core_usage().big == 0
        assert big.solution.core_usage().big <= 3
        assert little.solution.core_usage().little <= 2


class TestOptimality:
    """OTAC is optimal on homogeneous resources (up to the binary-search
    epsilon) — validated against the exhaustive oracle."""

    @pytest.mark.parametrize("core_type", [CoreType.BIG, CoreType.LITTLE])
    @pytest.mark.parametrize("cores", [1, 2, 3, 4])
    def test_matches_bruteforce_random(self, core_type, cores):
        rng = np.random.default_rng(int(core_type) * 100 + cores)
        config = GeneratorConfig(num_tasks=7, stateless_ratio=0.5)
        eps = 1.0 / cores
        for _ in range(15):
            profile = ChainProfile(random_chain(rng, config))
            outcome = otac(profile, cores, core_type)
            budget = (
                Resources(cores, 0)
                if core_type is CoreType.BIG
                else Resources(0, cores)
            )
            optimal = brute_force_optimal(profile, budget).period(profile)
            assert optimal - 1e-9 <= outcome.period <= optimal + eps + 1e-9

    def test_fully_replicable_single_stage_optimal(self):
        """When every task is replicable, the optimum on homogeneous cores
        is one stage replicated over all cores [Benoit & Robert 2010]."""
        chain = TaskChain.from_weights(
            [6, 4, 2, 8], [12, 8, 4, 16], [True] * 4
        )
        profile = ChainProfile(chain)
        outcome = otac(profile, 4, CoreType.BIG, epsilon=1e-9)
        assert outcome.period == pytest.approx(20 / 4)

    def test_pure_pipelining_regime(self):
        """All-sequential chains reduce to chains-on-chains partitioning."""
        chain = TaskChain.from_weights(
            [5, 5, 5, 5, 5, 5], [9, 9, 9, 9, 9, 9], [False] * 6
        )
        profile = ChainProfile(chain)
        outcome = otac(profile, 3, CoreType.BIG)
        assert outcome.period == pytest.approx(10.0)
        assert outcome.solution.num_stages == 3


class TestPaperGap:
    def test_single_type_lags_heterogeneous(self):
        """The paper's headline: OTAC on one type loses to strategies that
        use both — here on a chain with a heavy replicable tail."""
        from repro.core.herad import herad

        chain = TaskChain.from_weights(
            [10, 2, 40], [20, 4, 80], [False, True, True]
        )
        profile = ChainProfile(chain)
        resources = Resources(2, 2)
        h = herad(profile, resources).period
        ob = otac_big(profile, resources).period
        ol = otac_little(profile, resources).period
        assert h <= min(ob, ol)
