"""Equivalence of HeRAD's scalar and vectorized neighbor sweeps.

:func:`repro.core.herad._neighbor_sweep` switches between a scalar double
loop (tiny planes) and a Hillis-Steele doubling scan purely on plane size —
a performance decision that must never be observable.  The batch kernel
(:mod:`repro.core.kernels.herad_batch`) leans on the same invariant from the
other side: it *always* runs the doubling scan, including on the degenerate
budgets (``big=0``, ``little=0``, one core total) where the solo solver
would always take the scalar path.  These tests sweep identical planes
through all three implementations and require bitwise-equal results.
"""

from __future__ import annotations

import importlib

import numpy as np
import pytest

from repro.core.types import CoreType

# The package re-exports the ``herad`` *function* under the submodule's
# name, so attribute-style module access would resolve to the function.
herad_mod = importlib.import_module("repro.core.herad")
herad_batch_mod = importlib.import_module("repro.core.kernels.herad_batch")

#: Degenerate budgets first (the satellite obligation), then shapes around
#: the scalar/vector cutoff and a paper-sized plane.
_BUDGETS = (
    (0, 5),
    (5, 0),
    (0, 0),
    (1, 0),
    (0, 1),
    (1, 1),
    (2, 2),
    (4, 6),
    (10, 10),
)

_FIELD_NAMES = ("period", "acc_b", "acc_l", "prev_b", "prev_l", "vtype", "start")


def _random_plane(rng, big: int, little: int) -> dict[str, np.ndarray]:
    """A working plane with deliberate period ties and infeasible cells.

    Companion fields (``prev_*`` / ``vtype`` / ``start``) are *derived* from
    the ``(period, acc_b, acc_l)`` key rather than drawn independently: when
    two cells carry bitwise-equal keys, either may win a tie, and the sweeps
    only promise identical results when equal keys imply equal payloads —
    which is exactly what real DP planes guarantee (a key determines the
    winning candidate).  Independent random fields would test a stronger
    property neither implementation claims.
    """
    shape = (big + 1, little + 1)
    # Few distinct period values -> plenty of ties for the key comparison;
    # some cells infeasible (inf) like real early-prefix planes.
    period = rng.choice([1.0, 2.0, 4.0, np.inf], size=shape)
    acc_b = rng.integers(0, big + 1, size=shape).astype(np.int32)
    acc_l = rng.integers(0, little + 1, size=shape).astype(np.int32)
    mix = (
        acc_b.astype(np.int64) * 7
        + acc_l.astype(np.int64) * 13
        + np.where(np.isinf(period), 99.0, period).astype(np.int64) * 31
    )
    return {
        "period": period,
        "acc_b": acc_b,
        "acc_l": acc_l,
        "prev_b": (mix % (big + 2)).astype(np.int32),
        "prev_l": (mix % (little + 2)).astype(np.int32),
        "vtype": np.where(
            mix % 2 == 0, int(CoreType.BIG), int(CoreType.LITTLE)
        ).astype(np.int8),
        "start": (mix % 8).astype(np.int32),
    }


def _copy(plane: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return {name: field.copy() for name, field in plane.items()}


def _planes_equal(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    return all(np.array_equal(a[name], b[name]) for name in _FIELD_NAMES)


@pytest.mark.parametrize("budget", _BUDGETS, ids=str)
def test_scalar_and_vectorized_sweeps_identical(budget, monkeypatch):
    big, little = budget
    rng = np.random.default_rng(big * 100 + little)
    for trial in range(20):
        plane = _random_plane(rng, big, little)

        scalar = _copy(plane)
        herad_mod._neighbor_sweep_small(scalar, big, little)

        # Force the doubling scan even on planes under the scalar cutoff.
        vectorized = _copy(plane)
        monkeypatch.setattr(herad_mod, "_SWEEP_SCALAR_CUTOFF", -1)
        herad_mod._neighbor_sweep(vectorized, big, little)

        assert _planes_equal(scalar, vectorized), (
            f"budget {budget}, trial {trial}: scalar and vectorized sweeps "
            "diverged"
        )


@pytest.mark.parametrize("budget", _BUDGETS, ids=str)
def test_batch_sweep_matches_scalar_sweep(budget):
    """The batch kernel's sweep on a 1-row batch equals the scalar sweep."""
    big, little = budget
    rng = np.random.default_rng(1000 + big * 100 + little)
    for trial in range(10):
        plane = _random_plane(rng, big, little)

        scalar = _copy(plane)
        herad_mod._neighbor_sweep_small(scalar, big, little)

        # Pack into the batch layout: leading batch axis, combo/start key.
        shift_b = herad_batch_mod._ACC_B_SHIFT
        shift_l = herad_batch_mod._ACC_L_SHIFT
        batched = {
            "period": plane["period"][None].copy(),
            "combo": (
                (plane["acc_b"].astype(np.int64) << shift_b)
                | (plane["acc_l"].astype(np.int64) << shift_l)
            )[None],
            "prev_b": plane["prev_b"][None].copy(),
            "prev_l": plane["prev_l"][None].copy(),
            "vtype": plane["vtype"][None].copy(),
            "start": plane["start"][None].copy(),
        }
        herad_batch_mod._neighbor_sweep(batched, big, little)

        got_acc_b = (batched["combo"][0] >> shift_b).astype(np.int32)
        got_acc_l = (
            (batched["combo"][0] >> shift_l) & int(herad_batch_mod._ACC_L_MASK)
        ).astype(np.int32)
        assert np.array_equal(batched["period"][0], scalar["period"])
        assert np.array_equal(got_acc_b, scalar["acc_b"])
        assert np.array_equal(got_acc_l, scalar["acc_l"])
        for name in ("prev_b", "prev_l", "vtype", "start"):
            assert np.array_equal(batched[name][0], scalar[name]), (
                f"budget {budget}, trial {trial}: field {name} diverged"
            )
