"""Tests for repro.core.task (Task, TaskChain)."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidChainError
from repro.core.task import Task, TaskChain
from repro.core.types import CoreType


class TestTask:
    def test_weight_per_type(self):
        t = Task("t", 3.0, 7.0, True)
        assert t.weight(CoreType.BIG) == 3.0
        assert t.weight(CoreType.LITTLE) == 7.0

    def test_sequential_is_not_replicable(self):
        assert Task("t", 1, 1, False).sequential
        assert not Task("t", 1, 1, True).sequential

    @pytest.mark.parametrize("wb,wl", [(0, 1), (1, 0), (-2, 1), (1, -2), (float("nan"), 1), (1, float("inf"))])
    def test_invalid_weights_rejected(self, wb, wl):
        with pytest.raises(InvalidChainError):
            Task("t", wb, wl, True)


class TestTaskChain:
    def test_from_weights_roundtrip(self, simple_chain):
        assert simple_chain.n == 4
        assert simple_chain.weights(CoreType.BIG) == [4, 10, 3, 7]
        assert simple_chain.weights(CoreType.LITTLE) == [9, 21, 8, 15]
        assert [t.replicable for t in simple_chain] == [True, True, False, True]

    def test_empty_chain_rejected(self):
        with pytest.raises(InvalidChainError):
            TaskChain([])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidChainError):
            TaskChain.from_weights([1, 2], [1], [True, True])

    def test_homogeneous_builder(self):
        chain = TaskChain.homogeneous([2, 4], [True, False], slowdown=3.0)
        assert chain.weights(CoreType.LITTLE) == [6.0, 12.0]

    def test_homogeneous_rejects_bad_slowdown(self):
        with pytest.raises(InvalidChainError):
            TaskChain.homogeneous([1], [True], slowdown=0)

    def test_total_weight(self, simple_chain):
        assert simple_chain.total_weight(CoreType.BIG) == 24
        assert simple_chain.total_weight(CoreType.LITTLE) == 53

    def test_indices(self, simple_chain):
        assert simple_chain.replicable_indices == [0, 1, 3]
        assert simple_chain.sequential_indices == [2]

    def test_stateless_ratio(self, simple_chain):
        assert simple_chain.stateless_ratio == pytest.approx(0.75)

    def test_fully_replicable(self):
        chain = TaskChain.from_weights([1, 2], [2, 4], [True, True])
        assert chain.is_fully_replicable()

    def test_subchain(self, simple_chain):
        sub = simple_chain.subchain(1, 2)
        assert sub.n == 2
        assert sub.weights(CoreType.BIG) == [10, 3]

    def test_subchain_bounds_checked(self, simple_chain):
        with pytest.raises(InvalidChainError):
            simple_chain.subchain(2, 5)
        with pytest.raises(InvalidChainError):
            simple_chain.subchain(-1, 2)

    def test_container_protocol(self, simple_chain):
        assert len(simple_chain) == 4
        assert simple_chain[0].name == "tau_1"
        assert [t.name for t in simple_chain][-1] == "tau_4"

    def test_describe_mentions_every_task(self, simple_chain):
        text = simple_chain.describe()
        for task in simple_chain:
            assert task.name in text

    def test_chain_is_immutable(self, simple_chain):
        with pytest.raises(AttributeError):
            simple_chain.tasks = ()  # type: ignore[misc]
