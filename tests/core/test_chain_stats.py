"""Tests for repro.core.chain_stats (ChainProfile and Algo. 3 primitives)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain_stats import ChainProfile, profile_of
from repro.core.errors import InvalidChainError
from repro.core.task import TaskChain
from repro.core.types import INFINITY, CoreType


@pytest.fixture
def profile(simple_chain) -> ChainProfile:
    return ChainProfile(simple_chain)


class TestBasics:
    def test_totals(self, profile):
        assert profile.total_weight(CoreType.BIG) == 24
        assert profile.total_weight(CoreType.LITTLE) == 53

    def test_max_weights(self, profile):
        assert profile.max_weight(CoreType.BIG) == 10
        assert profile.max_weight(CoreType.LITTLE) == 21

    def test_max_sequential_weight(self, profile):
        # Only task index 2 is sequential.
        assert profile.max_sequential_weight(CoreType.BIG) == 3
        assert profile.max_sequential_weight(CoreType.LITTLE) == 8

    def test_max_sequential_weight_zero_when_fully_replicable(self):
        chain = TaskChain.from_weights([1, 2], [2, 4], [True, True])
        p = ChainProfile(chain)
        assert p.max_sequential_weight(CoreType.BIG) == 0.0

    def test_profile_of_idempotent(self, profile):
        assert profile_of(profile) is profile

    def test_profile_of_wraps_chain(self, simple_chain):
        assert isinstance(profile_of(simple_chain), ChainProfile)


class TestIntervalQueries:
    def test_interval_weight_matches_sum(self, profile, simple_chain):
        for s in range(4):
            for e in range(s, 4):
                expected = sum(
                    t.weight_big for t in simple_chain.tasks[s : e + 1]
                )
                assert profile.interval_weight(s, e, CoreType.BIG) == expected

    def test_interval_bounds_checked(self, profile):
        with pytest.raises(InvalidChainError):
            profile.interval_weight(2, 1, CoreType.BIG)
        with pytest.raises(InvalidChainError):
            profile.interval_weight(0, 4, CoreType.BIG)

    def test_is_replicable(self, profile):
        assert profile.is_replicable(0, 1)
        assert not profile.is_replicable(0, 2)
        assert not profile.is_replicable(2, 2)
        assert profile.is_replicable(3, 3)

    def test_next_sequential(self, profile):
        assert list(profile.next_sequential) == [2, 2, 2, 4, 4]

    def test_final_replicable_task(self, profile):
        assert profile.final_replicable_task(0, 0) == 1
        assert profile.final_replicable_task(3, 3) == 3

    def test_final_replicable_task_requires_replicable(self, profile):
        with pytest.raises(InvalidChainError):
            profile.final_replicable_task(0, 2)


class TestStageWeight:
    def test_replicable_stage_divides(self, profile):
        assert profile.stage_weight(0, 1, 2, CoreType.BIG) == 7.0

    def test_sequential_stage_ignores_cores(self, profile):
        assert profile.stage_weight(0, 2, 1, CoreType.BIG) == 17.0
        assert profile.stage_weight(0, 2, 5, CoreType.BIG) == 17.0

    def test_zero_cores_is_infinite(self, profile):
        assert profile.stage_weight(0, 1, 0, CoreType.BIG) == INFINITY

    def test_little_weights_used(self, profile):
        assert profile.stage_weight(0, 0, 1, CoreType.LITTLE) == 9.0


class TestRequiredCores:
    def test_formula(self, profile):
        # w([0,1], B) = 14; ceil(14/5) = 3.
        assert profile.required_cores(0, 1, CoreType.BIG, 5.0) == 3

    def test_minimum_one(self, profile):
        assert profile.required_cores(0, 0, CoreType.BIG, 100.0) == 1

    def test_invalid_period(self, profile):
        with pytest.raises(ValueError):
            profile.required_cores(0, 1, CoreType.BIG, 0.0)
        with pytest.raises(ValueError):
            profile.required_cores(0, 1, CoreType.BIG, math.inf)


class TestMaxPacking:
    def test_packs_under_period(self, profile):
        # Big weights 4, 10, 3, 7; one core, period 14 packs tasks 0-1.
        assert profile.max_packing(0, 1, CoreType.BIG, 14.0) == 1

    def test_sequential_region_reached(self, profile):
        # Period 17 packs 0..2 (sum 17, contains the sequential task).
        assert profile.max_packing(0, 1, CoreType.BIG, 17.0) == 2

    def test_replication_extends_packing(self, profile):
        # Two cores halve the replicable prefix weight: 14/2 = 7 <= 7.
        assert profile.max_packing(0, 2, CoreType.BIG, 7.0) == 1

    def test_forced_single_task(self, profile):
        # Nothing fits in period 1, but the stage still takes task 0.
        assert profile.max_packing(0, 1, CoreType.BIG, 1.0) == 0

    def test_zero_cores_forced(self, profile):
        assert profile.max_packing(0, 0, CoreType.BIG, 100.0) == 0

    def test_whole_chain(self, profile):
        assert profile.max_packing(0, 1, CoreType.BIG, 100.0) == 3

    @given(
        weights=st.lists(st.integers(1, 50), min_size=1, max_size=12),
        seq_mask=st.lists(st.booleans(), min_size=1, max_size=12),
        cores=st.integers(1, 4),
        period=st.floats(1.0, 200.0),
        start=st.integers(0, 11),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_scan(self, weights, seq_mask, cores, period, start):
        """MaxPacking's binary search equals the paper's linear definition."""
        n = len(weights)
        seq_mask = (seq_mask * n)[:n]
        start = start % n
        chain = TaskChain.from_weights(
            weights, [w * 2 for w in weights], [not s for s in seq_mask]
        )
        p = ChainProfile(chain)
        # Naive: max(start, max{e | w([start,e],cores) <= period}).
        best = start
        for e in range(start, n):
            if p.stage_weight(start, e, cores, CoreType.BIG) <= period:
                best = max(best, e)
        assert p.max_packing(start, cores, CoreType.BIG, period) == best


class TestVectorHelpers:
    def test_interval_weights_vector(self, profile):
        vec = profile.interval_weights_vector(3, CoreType.BIG)
        assert vec.tolist() == [24, 20, 10, 7]

    def test_replicable_to(self, profile):
        assert profile.replicable_to(1).tolist() == [True, True]
        assert profile.replicable_to(2).tolist() == [False, False, False]
        assert profile.replicable_to(3).tolist() == [False, False, False, True]

    def test_weights_view(self, profile):
        np.testing.assert_array_equal(
            profile.weights(CoreType.BIG), [4, 10, 3, 7]
        )
