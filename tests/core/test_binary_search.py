"""Tests for repro.core.binary_search (the Schedule driver, Algo. 1)."""

from __future__ import annotations

import pytest

from repro.core.binary_search import schedule_by_binary_search
from repro.core.bounds import search_epsilon
from repro.core.chain_stats import ChainProfile
from repro.core.errors import InvalidPlatformError
from repro.core.fertac import fertac_compute_solution
from repro.core.solution import Solution
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources


def test_returns_valid_solution(simple_profile, balanced_resources):
    outcome = schedule_by_binary_search(
        simple_profile, balanced_resources, fertac_compute_solution
    )
    assert outcome.feasible
    assert outcome.solution.is_valid(simple_profile, balanced_resources)
    assert outcome.period == outcome.solution.period(simple_profile)


def test_accepts_chain_directly(simple_chain, balanced_resources):
    outcome = schedule_by_binary_search(
        simple_chain, balanced_resources, fertac_compute_solution
    )
    assert outcome.feasible


def test_probe_log_recorded(simple_profile, balanced_resources):
    outcome = schedule_by_binary_search(
        simple_profile, balanced_resources, fertac_compute_solution
    )
    assert outcome.iterations >= 1
    assert len(outcome.probes) >= outcome.iterations
    for target, feasible in outcome.probes:
        assert isinstance(feasible, bool)
        assert outcome.bounds.lower <= target <= outcome.bounds.upper + 1e-9


def test_converges_within_epsilon_of_best_feasible(simple_profile):
    resources = Resources(2, 2)
    outcome = schedule_by_binary_search(
        simple_profile, resources, fertac_compute_solution
    )
    eps = search_epsilon(resources)
    # No feasible probe below best_period - eps was found: every failed
    # probe is below the final period.
    for target, feasible in outcome.probes:
        if not feasible:
            assert target <= outcome.period + eps


def test_epsilon_override_tightens(simple_profile, balanced_resources):
    coarse = schedule_by_binary_search(
        simple_profile, balanced_resources, fertac_compute_solution, epsilon=10.0
    )
    fine = schedule_by_binary_search(
        simple_profile, balanced_resources, fertac_compute_solution, epsilon=1e-6
    )
    assert fine.period <= coarse.period
    assert fine.iterations >= coarse.iterations


def test_invalid_epsilon_rejected(simple_profile, balanced_resources):
    with pytest.raises(ValueError):
        schedule_by_binary_search(
            simple_profile,
            balanced_resources,
            fertac_compute_solution,
            epsilon=0.0,
        )


def test_empty_budget_rejected(simple_profile):
    with pytest.raises(InvalidPlatformError):
        schedule_by_binary_search(
            simple_profile, Resources(0, 0), fertac_compute_solution
        )


def test_single_task_chain_degenerate_bracket():
    chain = TaskChain.from_weights([5], [10], [False])
    outcome = schedule_by_binary_search(
        chain, Resources(1, 0), fertac_compute_solution
    )
    assert outcome.feasible
    assert outcome.period == 5.0


def test_fallback_probe_rescues_stubborn_builder(simple_profile):
    """A builder that only succeeds at very large periods still yields a
    solution via the guaranteed fallback probes."""

    threshold = simple_profile.total_weight(CoreType.BIG)

    def picky(profile, resources, period):
        if period < threshold:
            return Solution.empty()
        return Solution.single_stage(profile, 1, CoreType.BIG)

    outcome = schedule_by_binary_search(
        simple_profile, Resources(1, 1), picky
    )
    assert outcome.feasible
    assert outcome.period == threshold


def test_iteration_cap_respected(simple_profile, balanced_resources):
    outcome = schedule_by_binary_search(
        simple_profile,
        balanced_resources,
        fertac_compute_solution,
        epsilon=1e-12,
        max_iterations=5,
    )
    assert outcome.iterations <= 5
    assert outcome.feasible
