"""Tests for repro.core.binary_search (the Schedule driver, Algo. 1)."""

from __future__ import annotations

import pytest

from repro.core.binary_search import schedule_by_binary_search
from repro.core.bounds import search_epsilon
from repro.core.chain_stats import ChainProfile
from repro.core.errors import InvalidPlatformError
from repro.core.fertac import fertac_compute_solution
from repro.core.solution import Solution
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources


def test_returns_valid_solution(simple_profile, balanced_resources):
    outcome = schedule_by_binary_search(
        simple_profile, balanced_resources, fertac_compute_solution
    )
    assert outcome.feasible
    assert outcome.solution.is_valid(simple_profile, balanced_resources)
    assert outcome.period == outcome.solution.period(simple_profile)


def test_accepts_chain_directly(simple_chain, balanced_resources):
    outcome = schedule_by_binary_search(
        simple_chain, balanced_resources, fertac_compute_solution
    )
    assert outcome.feasible


def test_probe_log_recorded(simple_profile, balanced_resources):
    outcome = schedule_by_binary_search(
        simple_profile, balanced_resources, fertac_compute_solution
    )
    assert outcome.iterations >= 1
    assert len(outcome.probes) >= outcome.iterations
    for target, feasible in outcome.probes:
        assert isinstance(feasible, bool)
        assert outcome.bounds.lower <= target <= outcome.bounds.upper + 1e-9


def test_converges_within_epsilon_of_best_feasible(simple_profile):
    resources = Resources(2, 2)
    outcome = schedule_by_binary_search(
        simple_profile, resources, fertac_compute_solution
    )
    eps = search_epsilon(resources)
    # No feasible probe below best_period - eps was found: every failed
    # probe is below the final period.
    for target, feasible in outcome.probes:
        if not feasible:
            assert target <= outcome.period + eps


def test_epsilon_override_tightens(simple_profile, balanced_resources):
    coarse = schedule_by_binary_search(
        simple_profile, balanced_resources, fertac_compute_solution, epsilon=10.0
    )
    fine = schedule_by_binary_search(
        simple_profile, balanced_resources, fertac_compute_solution, epsilon=1e-6
    )
    assert fine.period <= coarse.period
    assert fine.iterations >= coarse.iterations


def test_invalid_epsilon_rejected(simple_profile, balanced_resources):
    with pytest.raises(ValueError):
        schedule_by_binary_search(
            simple_profile,
            balanced_resources,
            fertac_compute_solution,
            epsilon=0.0,
        )


def test_empty_budget_rejected(simple_profile):
    with pytest.raises(InvalidPlatformError):
        schedule_by_binary_search(
            simple_profile, Resources(0, 0), fertac_compute_solution
        )


def test_single_task_chain_degenerate_bracket():
    chain = TaskChain.from_weights([5], [10], [False])
    outcome = schedule_by_binary_search(
        chain, Resources(1, 0), fertac_compute_solution
    )
    assert outcome.feasible
    assert outcome.period == 5.0


def test_fallback_probe_rescues_stubborn_builder(simple_profile):
    """A builder that only succeeds at very large periods still yields a
    solution via the guaranteed fallback probes."""

    threshold = simple_profile.total_weight(CoreType.BIG)

    def picky(profile, resources, period):
        if period < threshold:
            return Solution.empty()
        return Solution.single_stage(profile, 1, CoreType.BIG)

    outcome = schedule_by_binary_search(
        simple_profile, Resources(1, 1), picky
    )
    assert outcome.feasible
    assert outcome.period == threshold


class TestFallbackPath:
    """The post-loop rescue probes (binary_search.py, fallback block).

    Covers the branches the paper's strategies never hit: degenerate
    starting brackets and adversarial builders that defeat the theoretical
    feasibility of the upper bound.
    """

    def test_degenerate_bracket_skips_main_loop(self):
        # A single sequential task with fractional weight: the bracket width
        # is w / max(b, l) = 0.005, below eps = 1 / (b + l) = 0.25, so the
        # main loop never runs and only the fallback probes execute.
        chain = TaskChain.from_weights([0.01], [0.01], [False])
        outcome = schedule_by_binary_search(
            chain, Resources(2, 2), fertac_compute_solution
        )
        assert outcome.bounds.width < search_epsilon(Resources(2, 2))
        assert outcome.iterations == 0
        assert outcome.feasible
        assert outcome.period == pytest.approx(0.01)
        # The first rescue probe is the bracket's upper bound.
        assert outcome.probes[0][0] == pytest.approx(outcome.bounds.upper)
        assert outcome.probes[0][1] is True

    def test_degenerate_bracket_replicable_task(self):
        chain = TaskChain.from_weights([0.01], [0.01], [True])
        resources = Resources(2, 2)
        outcome = schedule_by_binary_search(
            chain, resources, fertac_compute_solution
        )
        assert outcome.iterations == 0
        assert outcome.feasible
        assert outcome.solution.is_valid(ChainProfile(chain), resources)

    def test_upper_bound_defeated_falls_back_to_one_core_period(self):
        """A builder that fails even at ``bounds.upper`` is rescued by the
        always-feasible whole-chain-on-one-core probe."""
        chain = TaskChain.from_weights([4, 4, 4, 4], [4, 4, 4, 4], [True] * 4)
        profile = ChainProfile(chain)
        whole = profile.total_weight(CoreType.BIG)  # 16

        def stubborn(profile, resources, period):
            if period < whole:
                return Solution.empty()
            return Solution.single_stage(profile, 1, CoreType.BIG)

        outcome = schedule_by_binary_search(profile, Resources(2, 2), stubborn)
        # bounds.upper = 16/2 + 4 = 12 < 16, so the first rescue probe fails
        # and the second (the one-core period) succeeds.
        assert outcome.bounds.upper == pytest.approx(12.0)
        assert outcome.feasible
        assert outcome.period == pytest.approx(whole)
        assert len(outcome.probes) == outcome.iterations + 2
        upper_probe, final_probe = outcome.probes[-2], outcome.probes[-1]
        assert upper_probe == (pytest.approx(12.0), False)
        assert final_probe == (pytest.approx(whole), True)

    def test_fallback_uses_cheapest_usable_core_type(self):
        """The one-core rescue period is the *minimum* whole-chain weight
        over usable types only — a little-only budget must use the little
        weights even when big weights are smaller."""
        chain = TaskChain.from_weights([3, 3], [6, 6], [False, False])
        seen: list[float] = []

        def record_and_refuse_until(profile, resources, period):
            seen.append(period)
            if period < 12.0:
                return Solution.empty()
            return Solution.single_stage(profile, 1, CoreType.LITTLE)

        outcome = schedule_by_binary_search(
            chain, Resources(0, 2), record_and_refuse_until
        )
        assert outcome.feasible
        assert outcome.period == pytest.approx(12.0)
        assert seen[-1] == pytest.approx(12.0)  # little total, not big's 6

    def test_never_feasible_builder_yields_empty_outcome(self):
        def hopeless(profile, resources, period):
            return Solution.empty()

        outcome = schedule_by_binary_search(
            TaskChain.from_weights([2, 3], [4, 6], [True, False]),
            Resources(1, 1),
            hopeless,
        )
        assert not outcome.feasible
        assert outcome.solution.is_empty
        assert outcome.period == float("inf")
        # Both rescue probes were attempted and recorded as failures.
        assert len(outcome.probes) == outcome.iterations + 2
        assert all(feasible is False for _, feasible in outcome.probes)


def test_iteration_cap_respected(simple_profile, balanced_resources):
    outcome = schedule_by_binary_search(
        simple_profile,
        balanced_resources,
        fertac_compute_solution,
        epsilon=1e-12,
        max_iterations=5,
    )
    assert outcome.iterations <= 5
    assert outcome.feasible
