"""k-type platform tests: value objects, solvers, and cross-checks.

The two-type paper behavior is pinned bitwise by ``test_k2_oracle.py``;
this module exercises the *generalized* surface — k-type budgets, weights,
and the exhaustive reference solver — and cross-checks it:

* at k = 2, the reference solver agrees with HeRAD (the paper's optimal DP)
  to within the binary-search tolerance;
* at k = 3, the reference solver agrees with the generalized brute force,
  and the k-type heuristics certify and stay above the reference period.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import search_epsilon
from repro.core.bruteforce import brute_force_optimal
from repro.core.certify import certify_outcome
from repro.core.chain_stats import ChainProfile
from repro.core.errors import InvalidChainError, InvalidPlatformError
from repro.core.fertac import efficiency_order, fertac
from repro.core.herad import herad
from repro.core.norep import norep_optimal
from repro.core.reference import ktype_reference
from repro.core.registry import STRATEGIES, get_info
from repro.core.task import Task, TaskChain
from repro.core.twocatac import twocatac
from repro.core.types import (
    CoreType,
    Resources,
    core_types,
    format_usage,
    type_name,
    type_symbol,
)
from repro.workloads.synthetic import (
    GeneratorConfig,
    chain_batch,
    ktype_chain_batch,
    random_chain,
    random_ktype_chain,
)


def _k3_chains(count=6, num_tasks=6, seed=7):
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=0.5)
    return list(ktype_chain_batch(count, config, ktype=3, seed=seed))


class TestCoreTypesIdiom:
    def test_k2_returns_the_enum_members(self):
        assert core_types(2) == (CoreType.BIG, CoreType.LITTLE)
        assert core_types(2)[0] is CoreType.BIG

    def test_k_gt_2_returns_plain_indices(self):
        assert core_types(4) == (0, 1, 2, 3)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidPlatformError):
            core_types(0)

    def test_symbols_and_names(self):
        assert [type_symbol(v) for v in range(4)] == ["B", "L", "T2", "T3"]
        assert [type_name(v) for v in range(4)] == [
            "big", "little", "type2", "type3",
        ]
        assert format_usage((3, 2, 1)) == "(3B, 2L, 1T2)"


class TestKTypeResources:
    def test_from_counts_roundtrip(self):
        budget = Resources.from_counts((5, 3, 2))
        assert budget.counts == (5, 3, 2)
        assert budget.ktype == 3
        assert budget.total == 10
        assert budget.big == 5
        assert list(budget) == [5, 3, 2]
        assert str(budget) == "(5B, 3L, 2T2)"

    def test_two_type_constructor_equals_from_counts(self):
        assert Resources(4, 6) == Resources.from_counts((4, 6))

    def test_minus_and_fits_on_third_type(self):
        budget = Resources.from_counts((2, 2, 2))
        assert budget.minus(2, 2).counts == (2, 2, 0)
        assert budget.fits(2, 2, 2)
        assert not budget.fits(2, 2, 3)
        assert budget.fits(2, 2)  # missing trailing types mean zero
        assert not budget.fits(1, 1, 1, 1)  # more types than the budget

    def test_usable_types_skips_empty_pools(self):
        budget = Resources.from_counts((2, 0, 1))
        assert budget.usable_types() == (0, 2)

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Resources.from_counts((2, -1, 1))


class TestKTypeChains:
    def test_from_weight_matrix(self):
        chain = TaskChain.from_weight_matrix(
            [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], [True, False]
        )
        assert chain.ktype == 3
        assert chain.tasks[0].weight(0) == 1.0
        assert chain.tasks[0].weight(1) == 3.0
        assert chain.tasks[0].weight(2) == 5.0

    def test_mixed_ktype_tasks_rejected(self):
        with pytest.raises(InvalidChainError):
            TaskChain(
                (
                    Task("a", 1.0, 2.0, True, extra_weights=(3.0,)),
                    Task("b", 1.0, 2.0, True),
                )
            )

    def test_fingerprint_distinguishes_extra_weights(self):
        base = TaskChain.from_weight_matrix([[1.0], [2.0]], [True])
        k3a = TaskChain.from_weight_matrix([[1.0], [2.0], [3.0]], [True])
        k3b = TaskChain.from_weight_matrix([[1.0], [2.0], [4.0]], [True])
        assert len({base.fingerprint, k3a.fingerprint, k3b.fingerprint}) == 3

    def test_ktype_generator_reduces_to_paper_distribution(self):
        config = GeneratorConfig(num_tasks=10, stateless_ratio=0.4)
        paper = list(chain_batch(4, config, seed=3))
        ktype = list(ktype_chain_batch(4, config, ktype=2, seed=3))
        assert [c.fingerprint for c in paper] == [
            c.fingerprint for c in ktype
        ]

    def test_ktype_generator_draws_k_columns(self):
        rng = np.random.default_rng(0)
        chain = random_ktype_chain(rng, GeneratorConfig(num_tasks=5), ktype=4)
        assert chain.ktype == 4
        for task in chain.tasks:
            for v in range(1, 4):
                assert task.weight(v) >= task.weight(0)

    def test_ktype_below_two_rejected(self):
        with pytest.raises(InvalidChainError):
            random_ktype_chain(np.random.default_rng(0), ktype=1)


class TestReferenceCrossChecks:
    def test_matches_herad_at_k2(self):
        config = GeneratorConfig(num_tasks=8, stateless_ratio=0.5)
        rng = np.random.default_rng(11)
        for budget in (Resources(3, 3), Resources(4, 1), Resources(1, 4)):
            eps = search_epsilon(budget)
            for _ in range(6):
                profile = ChainProfile(random_chain(rng, config))
                ref = ktype_reference(profile, budget)
                opt = herad(profile, budget)
                assert ref.solution.is_valid(profile, budget)
                assert abs(ref.period - opt.period) <= eps

    def test_matches_bruteforce_at_k3(self):
        budget = Resources.from_counts((2, 2, 1))
        eps = search_epsilon(budget)
        for chain in _k3_chains(count=5, num_tasks=5):
            profile = ChainProfile(chain)
            ref = ktype_reference(profile, budget)
            exact = brute_force_optimal(profile, budget)
            assert ref.solution.is_valid(profile, budget)
            assert abs(ref.period - exact.period(profile)) <= eps

    def test_certifies_at_k3(self):
        budget = Resources.from_counts((3, 2, 2))
        info = get_info("ktype_ref")
        for chain in _k3_chains(count=4):
            profile = ChainProfile(chain)
            outcome = info.func(profile, budget)
            certify_outcome(
                outcome, profile, budget, optimal=False, context="ktype_ref"
            )


class TestHeuristicsAtK3:
    BUDGET = Resources.from_counts((3, 3, 2))

    def test_efficiency_order_reverses_types(self):
        assert efficiency_order(Resources(2, 2)) == (
            CoreType.LITTLE,
            CoreType.BIG,
        )
        assert efficiency_order(self.BUDGET) == (2, 1, 0)

    @pytest.mark.parametrize("strategy", ["fertac", "2catac", "otac_b", "otac_l"])
    def test_valid_and_bounded_below_by_reference(self, strategy):
        info = get_info(strategy)
        for chain in _k3_chains(count=4):
            profile = ChainProfile(chain)
            outcome = info.func(profile, self.BUDGET)
            assert outcome.solution.is_valid(profile, self.BUDGET)
            certify_outcome(
                outcome, profile, self.BUDGET, optimal=False, context=strategy
            )
            reference = ktype_reference(profile, self.BUDGET)
            eps = search_epsilon(self.BUDGET)
            assert outcome.period >= reference.period - eps

    def test_two_type_only_strategies_reject_k3(self):
        chain = _k3_chains(count=1)[0]
        for solver in (herad, norep_optimal):
            with pytest.raises(InvalidPlatformError):
                solver(chain, self.BUDGET)

    def test_registry_flags_two_type_only(self):
        assert STRATEGIES["herad"].two_type_only
        assert STRATEGIES["norep"].two_type_only
        assert not STRATEGIES["ktype_ref"].two_type_only
        assert not STRATEGIES["fertac"].two_type_only

    def test_budget_wider_than_chain_rejected(self):
        chain = TaskChain.from_weights([3.0, 4.0], [5.0, 6.0], [True, False])
        with pytest.raises(InvalidPlatformError):
            fertac(chain, self.BUDGET)

    def test_twocatac_prefers_efficient_types(self):
        # One replicable task, plenty of every type: the secondary objective
        # must land the stage on the most efficient class that meets P.
        chain = TaskChain.from_weight_matrix(
            [[4.0], [4.0], [4.0]], [True]
        )
        budget = Resources.from_counts((2, 2, 2))
        outcome = twocatac(chain, budget)
        usage = outcome.solution.core_usage(budget.ktype)
        assert usage.counts[2] > 0
        assert usage.counts[0] == 0
