"""Tests for the no-replication DP baseline."""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest

from repro.core.bruteforce import _partitions
from repro.core.chain_stats import ChainProfile
from repro.core.errors import InvalidPlatformError
from repro.core.herad import herad
from repro.core.norep import norep_optimal, norep_period
from repro.core.registry import get_info
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources
from repro.workloads.generators import (
    fully_replicable_chain,
    fully_sequential_chain,
)
from repro.workloads.synthetic import GeneratorConfig, random_chain


def exhaustive_norep(chain: TaskChain, resources: Resources) -> float:
    """Independent oracle: enumerate all 1-core-per-stage schedules."""
    profile = ChainProfile(chain)
    best = float("inf")
    for parts in _partitions(profile.n):
        if len(parts) > resources.total:
            continue
        for types in product(
            (CoreType.BIG, CoreType.LITTLE), repeat=len(parts)
        ):
            if sum(1 for t in types if t is CoreType.BIG) > resources.big:
                continue
            if sum(1 for t in types if t is CoreType.LITTLE) > resources.little:
                continue
            period = max(
                profile.interval_weight(s, e, t)
                for (s, e), t in zip(parts, types)
            )
            best = min(best, period)
    return best


class TestCorrectness:
    def test_matches_exhaustive_oracle(self):
        rng = np.random.default_rng(1)
        for _ in range(40):
            n = int(rng.integers(1, 8))
            chain = random_chain(
                rng,
                GeneratorConfig(
                    num_tasks=n, stateless_ratio=float(rng.random())
                ),
            )
            big = int(rng.integers(0, 4))
            little = int(rng.integers(0, 4))
            if big + little == 0:
                big = 1
            resources = Resources(big, little)
            assert norep_period(chain, resources) == pytest.approx(
                exhaustive_norep(chain, resources)
            )

    def test_every_stage_has_one_core(self, simple_chain, balanced_resources):
        outcome = norep_optimal(simple_chain, balanced_resources)
        assert all(stage.cores == 1 for stage in outcome.solution)
        assert outcome.solution.is_valid(simple_chain, balanced_resources)

    def test_empty_budget_rejected(self, simple_chain):
        with pytest.raises(InvalidPlatformError):
            norep_optimal(simple_chain, Resources(0, 0))

    def test_single_core(self, simple_chain):
        assert norep_period(simple_chain, Resources(1, 0)) == 24.0
        assert norep_period(simple_chain, Resources(0, 1)) == 53.0


class TestReplicationAblation:
    def test_equal_to_herad_on_sequential_chains(self):
        """Without replicable tasks, replication buys nothing: both DPs
        must coincide."""
        rng = np.random.default_rng(2)
        for _ in range(15):
            n = int(rng.integers(1, 9))
            chain = random_chain(
                rng, GeneratorConfig(num_tasks=n, stateless_ratio=0.0)
            )
            resources = Resources(
                int(rng.integers(1, 4)), int(rng.integers(0, 4))
            )
            assert norep_period(chain, resources) == pytest.approx(
                herad(chain, resources).period
            )

    def test_never_beats_herad(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            chain = random_chain(
                rng, GeneratorConfig(num_tasks=8, stateless_ratio=0.5)
            )
            resources = Resources(3, 3)
            assert (
                norep_period(chain, resources)
                >= herad(chain, resources).period - 1e-9
            )

    def test_replication_gap_on_replicable_chains(self):
        """On a fully replicable chain with many cores, replication is
        worth roughly the core count; pipelining alone is capped by the
        largest task."""
        chain = fully_replicable_chain(4, weight_big=10.0)
        resources = Resources(8, 0)
        with_rep = herad(chain, resources).period  # 40 / 8 = 5
        without = norep_period(chain, resources)  # >= max task = 10
        assert with_rep == pytest.approx(5.0)
        assert without >= 10.0

    def test_no_gap_in_ccp_regime(self):
        chain = fully_sequential_chain(6, weight_big=10.0)
        resources = Resources(3, 0)
        assert norep_period(chain, resources) == herad(chain, resources).period


class TestRegistry:
    def test_registered_as_extension(self, simple_chain, balanced_resources):
        info = get_info("norep")
        assert not info.optimal
        outcome = info.func(simple_chain, balanced_resources)
        assert outcome.feasible
