"""Tests for warm-started incremental scheduling (repro.core.warmstart)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import warm_start
from repro.core.certify import optimality_bracket
from repro.core.chain_stats import ChainProfile
from repro.core.registry import get_info
from repro.core.types import Resources
from repro.workloads.synthetic import GeneratorConfig, random_ktype_chain

_CONFIG = GeneratorConfig(num_tasks=10, stateless_ratio=0.5)


def _instance(seed=0):
    rng = np.random.default_rng(seed)
    chain = random_ktype_chain(rng, _CONFIG, 2, name=f"w{seed}")
    return ChainProfile(chain)


def _cold(profile, resources, strategy="2catac"):
    return get_info(strategy).func(profile, resources)


class TestRefusals:
    def test_none_on_empty_budget(self):
        profile = _instance()
        previous = _cold(profile, Resources.from_counts((3, 3)))
        assert warm_start(previous, profile, Resources.from_counts((0, 0))) is None

    def test_none_when_fewer_cores_than_stages(self):
        profile = _instance()
        previous = _cold(profile, Resources.from_counts((4, 4)))
        stages = len(previous.solution.stages)
        if stages < 2:
            pytest.skip("previous solution degenerated to one stage")
        tiny = Resources.from_counts((stages - 1, 0))
        assert warm_start(previous, profile, tiny) is None

    def test_none_when_chain_length_changed(self):
        profile = _instance(0)
        previous = _cold(profile, Resources.from_counts((3, 3)))
        rng = np.random.default_rng(99)
        other = ChainProfile(
            random_ktype_chain(
                rng, GeneratorConfig(num_tasks=4, stateless_ratio=0.5), 2
            )
        )
        assert warm_start(previous, other, Resources.from_counts((3, 3))) is None


class TestValidity:
    @pytest.mark.parametrize("seed", range(8))
    def test_warm_outcomes_are_valid_schedules(self, seed):
        profile = _instance(seed)
        previous = _cold(profile, Resources.from_counts((4, 4)))
        shrunk = Resources.from_counts((3, 3))
        warm = warm_start(previous, profile, shrunk)
        if warm is None:
            return  # the frozen partition legitimately cannot fit
        assert warm.solution.is_valid(profile, shrunk)
        assert warm.period == warm.solution.period(profile)
        assert warm.iterations == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_same_budget_warm_stays_within_heuristic_bound(self, seed):
        """On an unchanged budget the frozen partition must land within the
        cold solver's proven feasibility bracket."""
        profile = _instance(seed)
        budget = Resources.from_counts((3, 3))
        previous = _cold(profile, budget)
        warm = warm_start(previous, profile, budget)
        assert warm is not None
        _, upper = optimality_bracket(profile, budget)
        assert warm.period <= upper * (1 + 1e-9)

    def test_certified_against_the_independent_checker(self):
        from repro.core.certify import certify_outcome

        profile = _instance(1)
        budget = Resources.from_counts((4, 3))
        warm = warm_start(_cold(profile, budget), profile, budget)
        assert warm is not None
        certify_outcome(warm, profile, budget, optimal=False, context="warm")


class TestWaterFill:
    def test_surplus_cores_never_worsen_the_period(self):
        profile = _instance(2)
        small = Resources.from_counts((2, 2))
        big = Resources.from_counts((5, 5))
        previous = _cold(profile, small)
        warm_small = warm_start(previous, profile, small)
        warm_big = warm_start(previous, profile, big)
        assert warm_small is not None and warm_big is not None
        assert warm_big.period <= warm_small.period + 1e-12

    def test_reweighted_chain_is_refit_on_the_frozen_partition(self):
        profile = _instance(3)
        budget = Resources.from_counts((3, 3))
        previous = _cold(profile, budget)
        rng = np.random.default_rng(77)
        mutated = ChainProfile(
            random_ktype_chain(rng, _CONFIG, 2, name="w3")
        )
        warm = warm_start(previous, mutated, budget)
        assert warm is not None
        assert warm.solution.is_valid(mutated, budget)
        # The interval partition is frozen: same stage boundaries.
        assert [
            (s.start, s.end) for s in warm.solution.stages
        ] == [(s.start, s.end) for s in previous.solution.stages]
