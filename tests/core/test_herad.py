"""Tests for repro.core.herad (the optimal DP) and its reference twin."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_optimal
from repro.core.chain_stats import ChainProfile
from repro.core.errors import InvalidPlatformError
from repro.core.herad import herad, herad_solution
from repro.core.herad_reference import herad_reference
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources
from repro.workloads.generators import (
    fully_replicable_chain,
    fully_sequential_chain,
    heavy_tail_chain,
    inverted_speed_chain,
)
from repro.workloads.synthetic import GeneratorConfig, random_chain


class TestSmallInstances:
    def test_single_task_single_core(self):
        chain = TaskChain.from_weights([5], [9], [False])
        assert herad(chain, Resources(1, 0)).period == 5.0
        assert herad(chain, Resources(0, 1)).period == 9.0

    def test_single_replicable_task_uses_replication(self):
        chain = TaskChain.from_weights([12], [24], [True])
        outcome = herad(chain, Resources(3, 0))
        assert outcome.period == pytest.approx(4.0)
        assert outcome.solution[0].cores == 3

    def test_sequential_task_never_replicated(self):
        chain = TaskChain.from_weights([12], [24], [False])
        outcome = herad(chain, Resources(3, 3))
        assert outcome.period == 12.0
        assert outcome.solution.core_usage().total == 1

    def test_simple_chain_optimal(self, simple_chain, balanced_resources):
        outcome = herad(simple_chain, balanced_resources)
        expected = brute_force_optimal(simple_chain, balanced_resources)
        assert outcome.period == expected.period(simple_chain)

    def test_empty_budget_rejected(self, simple_chain):
        with pytest.raises(InvalidPlatformError):
            herad(simple_chain, Resources(0, 0))

    def test_solution_only_helper(self, simple_chain, balanced_resources):
        sol = herad_solution(simple_chain, balanced_resources)
        assert sol.is_valid(simple_chain, balanced_resources)


class TestSecondaryObjective:
    def test_prefers_little_on_equal_speed(self):
        # Identical weights on both types: little cores must be used.
        chain = TaskChain.from_weights([4, 4], [4, 4], [False, False])
        outcome = herad(chain, Resources(2, 2))
        usage = outcome.solution.core_usage()
        assert usage.big == 0
        assert usage.little == 2

    def test_uses_big_only_when_needed(self):
        # The sequential task is too slow on little cores at the optimum.
        chain = TaskChain.from_weights([10, 1], [30, 1], [False, False])
        outcome = herad(chain, Resources(2, 2))
        assert outcome.period == 10.0
        usage = outcome.solution.core_usage()
        assert usage.big == 1

    def test_never_wastes_cores_on_sequential_stages(self):
        chain = fully_sequential_chain(5)
        outcome = herad(chain, Resources(5, 5))
        for stage in outcome.solution:
            assert stage.cores == 1


class TestStructuredChains:
    def test_fully_replicable_collapses_to_balance(self):
        chain = fully_replicable_chain(6, weight_big=10.0, slowdown=2.0)
        outcome = herad(chain, Resources(4, 0))
        assert outcome.period == pytest.approx(60.0 / 4)

    def test_heavy_tail_gets_the_replicas(self):
        chain = heavy_tail_chain(5, factor=50.0)
        outcome = herad(chain, Resources(4, 2))
        profile = ChainProfile(chain)
        bottleneck = outcome.solution.bottleneck(profile)
        assert outcome.solution.is_valid(profile, Resources(4, 2))
        # The heavy task's stage must hold several cores.
        heavy_stage = next(
            s for s in outcome.solution if s.start <= 4 <= s.end
        )
        assert heavy_stage.cores >= 2
        assert bottleneck.weight(profile) == outcome.period

    def test_inverted_speeds_handled(self):
        chain = inverted_speed_chain(6)
        resources = Resources(2, 2)
        outcome = herad(chain, resources)
        expected = brute_force_optimal(chain, resources)
        assert outcome.period == expected.period(chain)


class TestAgainstOracles:
    @pytest.mark.parametrize("sr", [0.0, 0.3, 0.7, 1.0])
    def test_period_matches_bruteforce(self, sr):
        rng = np.random.default_rng(int(sr * 10))
        for _ in range(20):
            n = int(rng.integers(1, 8))
            config = GeneratorConfig(num_tasks=n, stateless_ratio=sr)
            chain = random_chain(rng, config)
            big = int(rng.integers(0, 4))
            little = int(rng.integers(0, 4))
            if big + little == 0:
                big = 1
            resources = Resources(big, little)
            fast = herad(chain, resources)
            oracle = brute_force_optimal(chain, resources)
            assert fast.period == oracle.period(chain)
            assert fast.solution.is_valid(chain, resources)

    def test_matches_reference_on_usage(self):
        rng = np.random.default_rng(99)
        for _ in range(25):
            n = int(rng.integers(1, 9))
            config = GeneratorConfig(num_tasks=n, stateless_ratio=0.5)
            chain = random_chain(rng, config)
            resources = Resources(int(rng.integers(1, 4)), int(rng.integers(1, 4)))
            fast = herad(chain, resources, merge=False)
            ref = herad_reference(chain, resources)
            profile = ChainProfile(chain)
            assert fast.period == ref.period(profile)
            assert fast.solution.core_usage() == ref.core_usage()


class TestMergeStep:
    def test_merge_keeps_period_and_usage(self):
        rng = np.random.default_rng(5)
        config = GeneratorConfig(num_tasks=10, stateless_ratio=0.9)
        for _ in range(10):
            chain = random_chain(rng, config)
            profile = ChainProfile(chain)
            resources = Resources(4, 4)
            merged = herad(chain, resources, merge=True)
            plain = herad(chain, resources, merge=False)
            assert merged.period == plain.period
            assert merged.solution.core_usage() == plain.solution.core_usage()
            assert merged.solution.num_stages <= plain.solution.num_stages

    def test_outcome_metadata(self, simple_chain, balanced_resources):
        outcome = herad(simple_chain, balanced_resources)
        assert outcome.iterations == 0
        assert outcome.bounds.lower <= outcome.period <= outcome.bounds.upper


class TestMonotonicity:
    def test_more_cores_never_hurt(self):
        rng = np.random.default_rng(17)
        config = GeneratorConfig(num_tasks=8, stateless_ratio=0.6)
        for _ in range(10):
            chain = random_chain(rng, config)
            p_small = herad(chain, Resources(1, 1)).period
            p_mid = herad(chain, Resources(2, 2)).period
            p_big = herad(chain, Resources(4, 4)).period
            assert p_big <= p_mid <= p_small

    def test_extra_type_never_hurts(self):
        rng = np.random.default_rng(23)
        config = GeneratorConfig(num_tasks=8, stateless_ratio=0.5)
        for _ in range(10):
            chain = random_chain(rng, config)
            assert (
                herad(chain, Resources(2, 2)).period
                <= herad(chain, Resources(2, 0)).period
            )
            assert (
                herad(chain, Resources(2, 2)).period
                <= herad(chain, Resources(0, 2)).period
            )


class TestDegenerateWeights:
    def test_equal_weight_tasks(self):
        chain = TaskChain.from_weights([7] * 6, [7] * 6, [True] * 6)
        outcome = herad(chain, Resources(3, 3))
        assert outcome.period == pytest.approx(42 / 6)

    def test_tiny_and_huge_mixture(self):
        chain = TaskChain.from_weights(
            [1, 1000, 1], [1, 2000, 1], [True, True, True]
        )
        resources = Resources(3, 1)
        outcome = herad(chain, resources)
        oracle = brute_force_optimal(chain, resources)
        assert outcome.period == oracle.period(chain)
