"""Tests for repro.core.bounds (period bracket and epsilon)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import period_bounds, search_epsilon
from repro.core.bruteforce import brute_force_optimal
from repro.core.chain_stats import ChainProfile
from repro.core.errors import InvalidPlatformError
from repro.core.task import TaskChain
from repro.core.types import Resources
from repro.workloads.generators import inverted_speed_chain


class TestPaperRegime:
    """Big cores faster for every task — the paper's formula applies."""

    def test_balance_bound(self, simple_profile):
        bounds = period_bounds(simple_profile, Resources(2, 2))
        # sum w^B / (b+l) = 24/4 = 6; max seq w^B = 3.
        assert bounds.lower == 6.0

    def test_sequential_bound_dominates(self):
        chain = TaskChain.from_weights(
            [100, 1, 1], [200, 2, 2], [False, True, True]
        )
        bounds = period_bounds(ChainProfile(chain), Resources(4, 4))
        assert bounds.lower == 100.0

    def test_upper_at_least_lower(self, simple_profile):
        bounds = period_bounds(simple_profile, Resources(1, 1))
        assert bounds.upper >= bounds.lower

    def test_midpoint(self, simple_profile):
        bounds = period_bounds(simple_profile, Resources(2, 2))
        assert bounds.lower <= bounds.midpoint() <= bounds.upper


class TestGeneralized:
    def test_single_type_budget_uses_that_type(self):
        chain = TaskChain.from_weights([10, 10], [1, 1], [True, True])
        # Only little cores: the bound must track little weights even though
        # big weights are smaller... lower uses the fastest *usable* type.
        bounds = period_bounds(ChainProfile(chain), Resources(0, 2))
        assert bounds.lower == 1.0  # 2/2
        assert bounds.upper >= 1.0

    def test_mixed_fast_types_lower_bound_valid(self):
        # Two sequential tasks fast on *different* types: min-of-max would
        # overestimate; max-of-min is required.
        chain = TaskChain.from_weights(
            [10, 1], [1, 10], [False, False]
        )
        profile = ChainProfile(chain)
        resources = Resources(1, 1)
        bounds = period_bounds(profile, resources)
        optimal = brute_force_optimal(profile, resources).period(profile)
        assert bounds.lower <= optimal
        # tau_1 on L (1), tau_2 on B (1): optimal period is 1.
        assert optimal == 1.0

    def test_empty_budget_rejected(self, simple_profile):
        with pytest.raises(InvalidPlatformError):
            period_bounds(simple_profile, Resources(0, 0))

    @given(st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_bounds_bracket_optimum_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 7))
        wb = rng.integers(1, 30, n).astype(float)
        wl = rng.integers(1, 30, n).astype(float)  # arbitrary speeds
        rep = rng.random(n) < 0.5
        chain = TaskChain.from_weights(wb, wl, rep)
        profile = ChainProfile(chain)
        big = int(rng.integers(0, 4))
        little = int(rng.integers(0, 4))
        if big + little == 0:
            big = 1
        resources = Resources(big, little)
        bounds = period_bounds(profile, resources)
        optimal = brute_force_optimal(profile, resources).period(profile)
        assert bounds.lower <= optimal + 1e-9
        assert optimal <= bounds.upper + 1e-9

    def test_inverted_speeds_bracket(self):
        chain = inverted_speed_chain(6)
        profile = ChainProfile(chain)
        resources = Resources(2, 2)
        bounds = period_bounds(profile, resources)
        optimal = brute_force_optimal(profile, resources).period(profile)
        assert bounds.lower <= optimal <= bounds.upper


class TestEpsilon:
    def test_formula(self):
        assert search_epsilon(Resources(10, 10)) == pytest.approx(1 / 20)

    def test_empty_budget_rejected(self):
        with pytest.raises(InvalidPlatformError):
            search_epsilon(Resources(0, 0))
