"""Tests for repro.core.registry."""

from __future__ import annotations

import pytest

from repro.core.registry import (
    PAPER_ORDER,
    STRATEGIES,
    get_info,
    get_strategy,
    run_strategies,
    strategy_names,
)
from repro.core.types import Resources


def test_paper_order_matches_table1():
    assert PAPER_ORDER == ("herad", "2catac", "fertac", "otac_b", "otac_l")


def test_all_paper_strategies_registered():
    for name in PAPER_ORDER:
        assert name in STRATEGIES


@pytest.mark.parametrize(
    "alias,canonical",
    [
        ("HeRAD", "herad"),
        ("2CATAC", "2catac"),
        ("twocatac", "2catac"),
        ("OTAC (B)", "otac_b"),
        ("otac-l", "otac_l"),
        ("FERTAC", "fertac"),
    ],
)
def test_aliases_resolve(alias, canonical):
    assert get_info(alias).name == canonical


def test_unknown_name_raises_with_choices():
    with pytest.raises(KeyError, match="available"):
        get_strategy("does-not-exist")


def test_every_strategy_runs(simple_chain, balanced_resources):
    for name in strategy_names(paper_only=False):
        outcome = get_strategy(name)(simple_chain, balanced_resources)
        assert outcome.feasible, name
        assert outcome.solution.is_valid(simple_chain, balanced_resources)


def test_run_strategies_defaults(simple_chain, balanced_resources):
    outcomes = run_strategies(simple_chain, balanced_resources)
    assert set(outcomes) == set(PAPER_ORDER)
    # HeRAD is optimal: nothing beats it.
    best = outcomes["herad"].period
    for name, outcome in outcomes.items():
        assert outcome.period >= best - 1e-9, name


def test_run_strategies_subset(simple_chain, balanced_resources):
    outcomes = run_strategies(
        simple_chain, balanced_resources, names=["FERTAC", "herad"]
    )
    assert set(outcomes) == {"fertac", "herad"}


def test_metadata_flags():
    assert STRATEGIES["herad"].optimal
    assert not STRATEGIES["fertac"].optimal
    assert STRATEGIES["fertac"].heterogeneous
    assert not STRATEGIES["otac_b"].heterogeneous


def test_extensions_excluded_from_paper_names():
    assert "2catac_memo" not in strategy_names(paper_only=True)
    assert "2catac_memo" in strategy_names(paper_only=False)
