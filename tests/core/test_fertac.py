"""Tests for repro.core.fertac (Algo. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.fertac import fertac, fertac_compute_solution
from repro.core.herad import herad
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources
from repro.workloads.synthetic import GeneratorConfig, random_chain


class TestComputeSolution:
    def test_prefers_little_cores(self):
        # Both types can host everything: FERTAC must use little cores.
        chain = TaskChain.from_weights([2, 2], [3, 3], [False, False])
        profile = ChainProfile(chain)
        sol = fertac_compute_solution(profile, Resources(2, 2), 10.0)
        assert all(s.core_type is CoreType.LITTLE for s in sol)

    def test_falls_back_to_big(self):
        # Little cores are too slow for the target period.
        chain = TaskChain.from_weights([2, 2], [30, 30], [False, False])
        profile = ChainProfile(chain)
        sol = fertac_compute_solution(profile, Resources(2, 2), 5.0)
        assert not sol.is_empty
        assert all(s.core_type is CoreType.BIG for s in sol)

    def test_empty_when_infeasible(self):
        chain = TaskChain.from_weights([50], [100], [False])
        profile = ChainProfile(chain)
        assert fertac_compute_solution(profile, Resources(1, 1), 10.0).is_empty

    def test_respects_budget_across_stages(self):
        chain = TaskChain.from_weights(
            [5, 5, 5, 5], [6, 6, 6, 6], [False] * 4
        )
        profile = ChainProfile(chain)
        sol = fertac_compute_solution(profile, Resources(2, 2), 6.0)
        if not sol.is_empty:
            usage = sol.core_usage()
            assert usage.big <= 2 and usage.little <= 2

    def test_no_little_cores_platform(self):
        chain = TaskChain.from_weights([3, 3], [6, 6], [False, False])
        profile = ChainProfile(chain)
        sol = fertac_compute_solution(profile, Resources(2, 0), 3.0)
        assert not sol.is_empty
        assert all(s.core_type is CoreType.BIG for s in sol)


class TestSchedule:
    def test_valid_and_never_better_than_optimal(self, simple_profile):
        resources = Resources(2, 2)
        outcome = fertac(simple_profile, resources)
        optimal = herad(simple_profile, resources)
        assert outcome.solution.is_valid(simple_profile, resources)
        assert outcome.period >= optimal.period - 1e-9

    def test_deterministic(self, simple_profile, balanced_resources):
        a = fertac(simple_profile, balanced_resources)
        b = fertac(simple_profile, balanced_resources)
        assert a.solution.render() == b.solution.render()
        assert a.period == b.period

    @pytest.mark.parametrize("sr", [0.2, 0.5, 0.8])
    def test_near_optimal_on_paper_distribution(self, sr):
        """Average slowdown stays in the ballpark the paper reports (<~1.1)."""
        rng = np.random.default_rng(11)
        resources = Resources(10, 10)
        config = GeneratorConfig(num_tasks=12, stateless_ratio=sr)
        ratios = []
        for _ in range(25):
            profile = ChainProfile(random_chain(rng, config))
            f = fertac(profile, resources)
            h = herad(profile, resources)
            assert f.solution.is_valid(profile, resources)
            ratios.append(f.period / h.period)
        assert float(np.mean(ratios)) < 1.15

    def test_single_core_platform(self, simple_profile):
        outcome = fertac(simple_profile, Resources(0, 1))
        assert outcome.feasible
        assert outcome.period == simple_profile.total_weight(CoreType.LITTLE)
