"""Tests for the brute-force oracle and the merge post-pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import (
    _partitions,
    brute_force_optimal,
    brute_force_period,
)
from repro.core.chain_stats import ChainProfile
from repro.core.errors import InvalidPlatformError, SchedulingError
from repro.core.merge import merge_replicable_stages
from repro.core.solution import Solution
from repro.core.stage import Stage
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources


class TestPartitions:
    @pytest.mark.parametrize("n,count", [(1, 1), (2, 2), (3, 4), (4, 8)])
    def test_counts(self, n, count):
        assert len(list(_partitions(n))) == count

    def test_each_partition_covers(self):
        for intervals in _partitions(4):
            assert intervals[0][0] == 0
            assert intervals[-1][1] == 3
            for (a, b), (c, d) in zip(intervals, intervals[1:]):
                assert c == b + 1


class TestBruteForce:
    def test_known_instance(self, simple_chain, balanced_resources):
        sol = brute_force_optimal(simple_chain, balanced_resources)
        assert sol.period(simple_chain) == 10.0
        assert sol.is_valid(simple_chain, balanced_resources)

    def test_period_helper(self, simple_chain, balanced_resources):
        assert brute_force_period(simple_chain, balanced_resources) == 10.0

    def test_sequential_stage_gets_one_core(self):
        chain = TaskChain.from_weights([5, 5], [9, 9], [False, False])
        sol = brute_force_optimal(chain, Resources(4, 4))
        for stage in sol:
            assert stage.cores == 1

    def test_size_guard(self):
        chain = TaskChain.from_weights([1] * 20, [1] * 20, [True] * 20)
        with pytest.raises(SchedulingError):
            brute_force_optimal(chain, Resources(1, 1))

    def test_empty_budget_rejected(self, simple_chain):
        with pytest.raises(InvalidPlatformError):
            brute_force_optimal(simple_chain, Resources(0, 0))

    def test_usage_is_lexicographically_minimal(self):
        # Equal speeds: period 4 achievable with (0 big, 2 little).
        chain = TaskChain.from_weights([4, 4], [4, 4], [False, False])
        sol = brute_force_optimal(chain, Resources(2, 2))
        usage = sol.core_usage()
        assert (usage.big, usage.little) == (0, 2)


class TestMerge:
    def test_merges_adjacent_replicable_same_type(self, ):
        chain = TaskChain.from_weights([4, 4, 4], [8, 8, 8], [True] * 3)
        profile = ChainProfile(chain)
        sol = Solution(
            [Stage(0, 0, 1, CoreType.BIG), Stage(1, 2, 2, CoreType.BIG)]
        )
        merged = merge_replicable_stages(sol, profile)
        assert merged.num_stages == 1
        assert merged[0].cores == 3
        assert merged.period(profile) <= sol.period(profile)

    def test_does_not_merge_across_types(self):
        chain = TaskChain.from_weights([4, 4], [8, 8], [True, True])
        sol = Solution(
            [Stage(0, 0, 1, CoreType.BIG), Stage(1, 1, 1, CoreType.LITTLE)]
        )
        assert merge_replicable_stages(sol, chain).num_stages == 2

    def test_does_not_merge_sequential(self):
        chain = TaskChain.from_weights([4, 4], [8, 8], [True, False])
        sol = Solution(
            [Stage(0, 0, 1, CoreType.BIG), Stage(1, 1, 1, CoreType.BIG)]
        )
        assert merge_replicable_stages(sol, chain).num_stages == 2

    def test_merge_chains_transitively(self):
        chain = TaskChain.from_weights([2] * 4, [4] * 4, [True] * 4)
        sol = Solution(
            [Stage(i, i, 1, CoreType.LITTLE) for i in range(4)]
        )
        merged = merge_replicable_stages(sol, chain)
        assert merged.num_stages == 1
        assert merged[0].cores == 4

    def test_empty_solution_passthrough(self, simple_profile):
        assert merge_replicable_stages(Solution.empty(), simple_profile).is_empty

    def test_merge_never_increases_period_random(self):
        rng = np.random.default_rng(31)
        for _ in range(30):
            n = int(rng.integers(2, 9))
            wb = rng.integers(1, 20, n).astype(float)
            rep = rng.random(n) < 0.7
            chain = TaskChain.from_weights(wb, wb * 2, rep)
            profile = ChainProfile(chain)
            # Random contiguous decomposition with random cores/types.
            cuts = sorted(
                set(rng.integers(1, n, size=rng.integers(0, n)).tolist())
            )
            bounds = [0, *cuts, n]
            stages = [
                Stage(
                    bounds[i],
                    bounds[i + 1] - 1,
                    int(rng.integers(1, 4)),
                    CoreType(int(rng.integers(0, 2))),
                )
                for i in range(len(bounds) - 1)
            ]
            sol = Solution(stages)
            merged = merge_replicable_stages(sol, profile)
            assert merged.period(profile) <= sol.period(profile) + 1e-12
            assert merged.covers(profile)
