"""Tests for repro.core.packing (ComputeStage, Algo. 2)."""

from __future__ import annotations

import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.packing import compute_stage, stage_fits
from repro.core.task import TaskChain
from repro.core.types import CoreType


def profile_from(wb, rep, slowdown=2.0):
    wl = [w * slowdown for w in wb]
    return ChainProfile(TaskChain.from_weights(wb, wl, rep))


class TestSingleCorePacking:
    def test_packs_up_to_period(self):
        p = profile_from([4, 4, 4, 100], [False] * 4)
        plan = compute_stage(p, 0, 3, CoreType.BIG, 12.0)
        assert plan.end == 2
        assert plan.cores == 1

    def test_final_stage_detected(self):
        p = profile_from([1, 1, 1], [False] * 3)
        plan = compute_stage(p, 0, 1, CoreType.BIG, 10.0)
        assert plan.end == 2
        assert plan.cores == 1


class TestReplicableExtension:
    def test_extends_replicable_run_and_counts_cores(self):
        # tasks 0-3 replicable then one sequential; period 5.
        p = profile_from([4, 4, 4, 4, 9], [True, True, True, True, False])
        plan = compute_stage(p, 0, 8, CoreType.BIG, 5.0)
        # Extended to the end of the replicable run (task 3, sum 16),
        # requiring ceil(16/5) = 4 cores... minus the leave-one-core
        # refinement if the tail fits with the sequential task.
        assert plan.end in (2, 3)
        weight = p.stage_weight(0, plan.end, plan.cores, CoreType.BIG)
        assert weight <= 5.0

    def test_reduces_when_not_enough_cores(self):
        p = profile_from([4, 4, 4, 4, 9], [True, True, True, True, False])
        plan = compute_stage(p, 0, 2, CoreType.BIG, 5.0)
        assert plan.cores <= 2
        assert p.stage_weight(0, plan.end, plan.cores, CoreType.BIG) <= 5.0

    def test_leave_one_core_refinement(self):
        # Replicable run 0..2 (sum 6, needs 2 cores at P=5); the leftover
        # task 2 fits with the following sequential task 3 on one core
        # (1 + 1 = 2 <= 5), so the stage gives one core back and shrinks
        # to what a single core packs (tasks 0-1, sum 5).
        p = profile_from([4, 1, 1, 1], [True, True, True, False])
        plan = compute_stage(p, 0, 8, CoreType.BIG, 5.0)
        assert plan.end == 1
        assert plan.cores == 1

    def test_refinement_skipped_when_shrunk_stage_invalid(self):
        # One heavy replicable task needing 2 cores: shrinking to 1 core
        # would violate the period; the refinement must not fire.
        p = profile_from([10, 3], [True, False])
        plan = compute_stage(p, 0, 4, CoreType.BIG, 6.0)
        assert plan.end == 0
        assert plan.cores == 2
        assert stage_fits(p, 0, plan, 4, CoreType.BIG, 6.0)

    def test_final_replicable_stage_not_extended_past_end(self):
        p = profile_from([4, 4], [True, True])
        plan = compute_stage(p, 0, 4, CoreType.BIG, 100.0)
        assert plan.end == 1
        assert plan.cores == 1


class TestForcedAndInvalidStages:
    def test_forced_overweight_stage_detected_by_fits(self):
        p = profile_from([50, 1], [False, False])
        plan = compute_stage(p, 0, 2, CoreType.BIG, 10.0)
        assert plan.end == 0
        assert not stage_fits(p, 0, plan, 2, CoreType.BIG, 10.0)

    def test_zero_available_cores_invalid(self):
        p = profile_from([5, 5], [True, True])
        plan = compute_stage(p, 0, 0, CoreType.BIG, 100.0)
        assert not stage_fits(p, 0, plan, 0, CoreType.BIG, 100.0)

    def test_heavy_replicable_task_gets_multiple_cores(self):
        p = profile_from([30, 1], [True, False])
        plan = compute_stage(p, 0, 5, CoreType.BIG, 10.0)
        assert plan.end == 0
        assert plan.cores == 3
        assert stage_fits(p, 0, plan, 5, CoreType.BIG, 10.0)


class TestLittleCores:
    def test_little_weights_drive_packing(self):
        p = profile_from([4, 4, 4], [False] * 3, slowdown=3.0)
        # Little weights are 12 each: period 24 packs two tasks.
        plan = compute_stage(p, 0, 2, CoreType.LITTLE, 24.0)
        assert plan.end == 1


class TestStageFits:
    def test_happy_path(self, simple_profile):
        plan = compute_stage(simple_profile, 0, 2, CoreType.BIG, 7.0)
        assert stage_fits(simple_profile, 0, plan, 2, CoreType.BIG, 7.0)

    def test_rejects_over_budget(self, simple_profile):
        plan = compute_stage(simple_profile, 0, 2, CoreType.BIG, 7.0)
        if plan.cores > 1:
            assert not stage_fits(
                simple_profile, 0, plan, plan.cores - 1, CoreType.BIG, 7.0
            )
