"""Scale smoke tests and edge cases across the scheduling core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.fertac import fertac
from repro.core.herad import herad
from repro.core.otac import otac
from repro.core.twocatac import twocatac
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources
from repro.workloads.synthetic import GeneratorConfig, random_chain


class TestScale:
    """Paper-scale instances stay correct and tractable."""

    def test_herad_sixty_tasks(self):
        rng = np.random.default_rng(0)
        chain = random_chain(
            rng, GeneratorConfig(num_tasks=60, stateless_ratio=0.5)
        )
        profile = ChainProfile(chain)
        resources = Resources(20, 20)
        optimal = herad(profile, resources)
        greedy = fertac(profile, resources)
        assert optimal.solution.is_valid(profile, resources)
        assert optimal.period <= greedy.period + 1e-9

    def test_fertac_hundred_sixty_tasks(self):
        rng = np.random.default_rng(1)
        chain = random_chain(
            rng, GeneratorConfig(num_tasks=160, stateless_ratio=0.5)
        )
        profile = ChainProfile(chain)
        resources = Resources(100, 100)
        outcome = fertac(profile, resources)
        assert outcome.solution.is_valid(profile, resources)
        # The binary search hits near the balance bound with ample cores.
        lower = profile.total_weight(CoreType.BIG) / resources.total
        assert outcome.period <= 3.0 * lower

    def test_memoized_2catac_eighty_tasks(self):
        rng = np.random.default_rng(2)
        chain = random_chain(
            rng, GeneratorConfig(num_tasks=80, stateless_ratio=0.5)
        )
        profile = ChainProfile(chain)
        resources = Resources(20, 20)
        outcome = twocatac(profile, resources, memoize=True)
        assert outcome.solution.is_valid(profile, resources)


class TestDegenerateShapes:
    def test_single_task_every_strategy(self):
        chain = TaskChain.from_weights([7], [9], [True])
        resources = Resources(2, 2)
        for strategy in (herad, fertac, twocatac):
            outcome = strategy(chain, resources)
            assert outcome.feasible
            assert outcome.solution.num_stages == 1

    def test_two_identical_core_types(self):
        """w^B == w^L everywhere: the platform is effectively homogeneous;
        HeRAD must match OTAC over the pooled cores and prefer little."""
        chain = TaskChain.from_weights(
            [6, 3, 9, 3], [6, 3, 9, 3], [True, False, True, True]
        )
        pooled = otac(chain, 6, CoreType.BIG, epsilon=1e-9)
        split = herad(chain, Resources(3, 3))
        assert split.period <= pooled.period + 1e-9
        usage = split.solution.core_usage()
        assert usage.little >= usage.big  # little preferred on ties

    def test_all_weight_in_one_sequential_task(self):
        chain = TaskChain.from_weights(
            [1, 1000, 1], [2, 2000, 2], [True, False, True]
        )
        outcome = herad(chain, Resources(4, 4))
        assert outcome.period == 1000.0

    def test_extreme_weight_ratio(self):
        chain = TaskChain.from_weights(
            [1e-6, 1e6], [2e-6, 2e6], [True, True]
        )
        resources = Resources(2, 2)
        outcome = herad(chain, resources)
        assert outcome.solution.is_valid(chain, resources)
        assert outcome.period == pytest.approx(1e6 / 2, rel=1e-9)

    def test_many_tiny_tasks_one_core(self):
        chain = TaskChain.from_weights([1] * 50, [2] * 50, [False] * 50)
        outcome = herad(chain, Resources(1, 0))
        assert outcome.period == 50.0
        assert outcome.solution.num_stages == 1

    def test_alternating_seq_rep_uses_separate_stages(self):
        chain = TaskChain.from_weights(
            [10, 10, 10, 10], [20, 20, 20, 20], [False, True, False, True]
        )
        outcome = herad(chain, Resources(4, 0))
        profile = ChainProfile(chain)
        # Perfect split: four one-task stages at period 10.
        assert outcome.period == pytest.approx(10.0)
        assert outcome.solution.covers(profile)


class TestTieBreakDeterminism:
    def test_identical_runs_identical_results(self):
        rng = np.random.default_rng(5)
        chain = random_chain(
            rng, GeneratorConfig(num_tasks=15, stateless_ratio=0.5)
        )
        resources = Resources(5, 5)
        renders = {
            herad(chain, resources).solution.render() for _ in range(3)
        }
        assert len(renders) == 1

    def test_profile_reuse_matches_fresh(self):
        rng = np.random.default_rng(6)
        chain = random_chain(
            rng, GeneratorConfig(num_tasks=12, stateless_ratio=0.5)
        )
        profile = ChainProfile(chain)
        resources = Resources(4, 4)
        assert (
            herad(profile, resources).period
            == herad(chain, resources).period
        )
