"""Differential tests for the batch-vectorized solver kernels.

The ``--kernel batch`` tier promises **bitwise-identical** outcomes to the
pure-python solvers, which stay the differential oracle.  These tests pin
that promise at three levels: the packing layer's invariants, each kernel
against its scalar twin over mixed batches and degenerate budgets (the full
outcome — period bits, rendered schedule, probe log, iteration count,
bounds), and :func:`repro.core.registry.solve_batch` against the 1260-cell
pre-refactor oracle fixture.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.errors import InvalidChainError, InvalidPlatformError
from repro.core.kernels import (
    ChainPack,
    herad_batch,
    pack_profiles,
    twocatac_batch,
    twocatac_memo_batch,
)
from repro.core.registry import STRATEGIES, get_info, solve_batch
from repro.core.types import Resources
from repro.workloads import generators as g
from repro.workloads.synthetic import (
    GeneratorConfig,
    chain_batch,
    ktype_chain_batch,
)

_FIXTURE = Path(__file__).resolve().parent.parent / "data" / "k2_oracle.json"

#: (strategy name, batch kernel) pairs under differential test.
_KERNELS = (
    ("herad", herad_batch),
    ("2catac", twocatac_batch),
    ("2catac_memo", twocatac_memo_batch),
)

#: Budgets covering the paper scenario plus every degenerate shape the
#: kernels special-case (single type, single core, tiny planes).
_BUDGETS = (
    Resources(10, 10),
    Resources(4, 4),
    Resources(2, 6),
    Resources(5, 1),
    Resources(1, 5),
    Resources(4, 0),
    Resources(0, 4),
    Resources(1, 1),
)


def _mixed_profiles():
    """Chains of every length 1..20 plus the structured generators."""
    chains = []
    for n in range(1, 21):
        cfg = GeneratorConfig(num_tasks=n, stateless_ratio=0.5)
        chains.extend(chain_batch(1, cfg, seed=100 + n))
    chains += [
        g.fully_replicable_chain(12),
        g.fully_sequential_chain(12),
        g.alternating_chain(15),
        g.heavy_tail_chain(10),
        g.inverted_speed_chain(14),
        g.uniform_chain(1),
    ]
    return [ChainProfile(c) for c in chains]


def _signature(outcome):
    """Every observable facet of an outcome, with periods as exact bits."""
    return (
        outcome.period.hex(),
        outcome.solution.render(),
        outcome.iterations,
        tuple((target.hex(), feasible) for target, feasible in outcome.probes),
        (outcome.bounds.lower.hex(), outcome.bounds.upper.hex()),
    )


class TestChainPack:
    def test_empty_batch_rejected(self):
        with pytest.raises(InvalidChainError):
            pack_profiles([])

    def test_single_type_profile_rejected(self):
        class OneTypeProfile:
            """A profile shape the two-type kernels must refuse."""

            ktype = 1

        with pytest.raises(InvalidPlatformError):
            pack_profiles([OneTypeProfile()])

    def test_padding_invariants(self):
        profiles = _mixed_profiles()
        pack = ChainPack(profiles)
        assert pack.n == max(p.n for p in profiles)
        for row, profile in enumerate(pack.profiles):
            for v in (0, 1):
                plane = pack.prefix[v][row]
                # Real prefix values, then the final value repeated.
                assert list(plane[: profile.n + 1]) == list(profile.prefix[v])
                assert (plane[profile.n :] == plane[profile.n]).all()
                assert (plane[1:] >= plane[:-1]).all()
            # Padded next-sequential entries point past the real chain.
            assert (pack.next_seq[row, profile.n + 1 :] == profile.n).all()


class TestKernelDifferential:
    @pytest.mark.parametrize("budget", _BUDGETS, ids=str)
    @pytest.mark.parametrize("name,batch_fn", _KERNELS, ids=lambda k: str(k))
    def test_bitwise_equal_to_python(self, name, batch_fn, budget):
        profiles = _mixed_profiles()
        solo_fn = STRATEGIES[name].func
        batch_outcomes = batch_fn(profiles, budget)
        assert len(batch_outcomes) == len(profiles)
        for profile, got in zip(profiles, batch_outcomes):
            assert _signature(got) == _signature(solo_fn(profile, budget))

    def test_k3_budget_rejected(self):
        profiles = _mixed_profiles()[:3]
        budget = Resources.from_counts((4, 4, 2))
        for _, batch_fn in _KERNELS:
            with pytest.raises(InvalidPlatformError):
                batch_fn(profiles, budget)

    def test_empty_budget_rejected(self):
        profiles = _mixed_profiles()[:3]
        for _, batch_fn in _KERNELS:
            with pytest.raises(InvalidPlatformError):
                batch_fn(profiles, Resources(0, 0))

    def test_oversized_budget_exceeds_packed_key_lanes(self):
        profiles = _mixed_profiles()[:1]
        with pytest.raises(InvalidPlatformError):
            herad_batch(profiles, Resources(1 << 15, 1))


class TestSolveBatch:
    def test_oracle_fixture_bitwise_through_batch_tier(self):
        """The full 1260-cell oracle replays identically through solve_batch."""
        oracle = json.loads(_FIXTURE.read_text())
        chains = []
        for sr in (0.2, 0.5, 0.8):
            cfg = GeneratorConfig(num_tasks=20, stateless_ratio=sr)
            chains.extend(chain_batch(8, cfg, seed=int(sr * 10)))
        chains += [
            g.fully_replicable_chain(12),
            g.fully_sequential_chain(12),
            g.alternating_chain(15),
            g.heavy_tail_chain(10),
            g.inverted_speed_chain(14),
            g.uniform_chain(1),
        ]
        cells = {
            (row["chain"], tuple(row["budget"]), row["strategy"]): row
            for row in oracle["rows"]
        }
        groups = sorted({(budget, name) for _, budget, name in cells})
        mismatches = []
        for budget, name in groups:
            resources = Resources(*budget)
            outcomes = solve_batch(chains, resources, name)
            for index, outcome in enumerate(outcomes):
                row = cells[index, budget, name]
                usage = outcome.solution.core_usage()
                got = {
                    "period_hex": outcome.period.hex(),
                    "usage": [usage.big, usage.little],
                    "render": outcome.solution.render(),
                }
                want = {
                    "period_hex": row["period_hex"],
                    "usage": row["usage"],
                    "render": row["render"],
                }
                if got != want:
                    mismatches.append((index, budget, name, want, got))
        assert not mismatches, (
            f"{len(mismatches)} oracle cells diverged through the batch "
            f"tier; first: {mismatches[0]}"
        )

    def test_scalar_only_strategy_maps_python(self):
        profiles = _mixed_profiles()[:5]
        resources = Resources(6, 6)
        assert get_info("fertac").batch_func is None
        outcomes = solve_batch(profiles, resources, "fertac")
        for profile, got in zip(profiles, outcomes):
            assert _signature(got) == _signature(
                get_info("fertac").func(profile, resources)
            )

    def test_k3_budget_falls_back_per_instance(self):
        chains = list(
            ktype_chain_batch(4, GeneratorConfig(num_tasks=8), ktype=3, seed=2)
        )
        resources = Resources.from_counts((3, 3, 2))
        outcomes = solve_batch(chains, resources, "2catac")
        solo_fn = get_info("2catac").func
        for chain, got in zip(chains, outcomes):
            assert _signature(got) == _signature(solo_fn(chain, resources))

    def test_two_type_only_strategy_raises_like_python_at_k3(self):
        chains = list(
            ktype_chain_batch(2, GeneratorConfig(num_tasks=6), ktype=3, seed=3)
        )
        resources = Resources.from_counts((3, 3, 2))
        with pytest.raises(InvalidPlatformError):
            solve_batch(chains, resources, "herad")

    def test_empty_batch_is_empty(self):
        assert solve_batch([], Resources(4, 4), "herad") == []

    def test_spans_sub_batches(self):
        """A batch larger than the kernel sub-batch span stays in order."""
        cfg = GeneratorConfig(num_tasks=10, stateless_ratio=0.5)
        profiles = [ChainProfile(c) for c in chain_batch(120, cfg, seed=9)]
        resources = Resources(5, 5)
        solo_fn = get_info("herad").func
        outcomes = solve_batch(profiles, resources, "herad")
        assert len(outcomes) == len(profiles)
        for profile, got in zip(profiles, outcomes):
            assert _signature(got) == _signature(solo_fn(profile, resources))
