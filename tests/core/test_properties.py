"""Property-based tests (hypothesis) for the scheduling core's invariants.

These are the library's strongest correctness guarantees:

1. every strategy returns a structurally valid schedule (contiguous cover,
   Eq. (3) budget respected);
2. HeRAD's period equals the exhaustive optimum and lower-bounds every
   heuristic;
3. the fast HeRAD equals the literal pseudocode reference in both period
   and core usage;
4. the ``CompareCells`` fold is order-insensitive and equivalent to the
   lexicographic key minimum (the insight the vectorization relies on);
5. period bounds always bracket the optimum.
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import period_bounds
from repro.core.bruteforce import brute_force_optimal
from repro.core.chain_stats import ChainProfile
from repro.core.fertac import fertac
from repro.core.herad import herad
from repro.core.herad_reference import _Cell, _compare_cells, herad_reference
from repro.core.otac import otac_big, otac_little
from repro.core.task import TaskChain
from repro.core.twocatac import twocatac
from repro.core.types import Resources


@st.composite
def instances(draw, max_tasks: int = 7, max_cores: int = 3):
    """A random small scheduling instance."""
    n = draw(st.integers(1, max_tasks))
    wb = draw(
        st.lists(st.integers(1, 30), min_size=n, max_size=n)
    )
    slow = draw(
        st.lists(st.integers(1, 5), min_size=n, max_size=n)
    )
    rep = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    big = draw(st.integers(0, max_cores))
    little = draw(st.integers(0, max_cores))
    if big + little == 0:
        little = 1
    chain = TaskChain.from_weights(
        wb, [w * s for w, s in zip(wb, slow)], rep
    )
    return chain, Resources(big, little)


def _check_structure(solution, profile, resources):
    assert solution.covers(profile)
    usage = solution.core_usage()
    assert resources.fits(usage.big, usage.little)
    # Contiguity is enforced by the constructor; re-check coverage bounds.
    assert solution[0].start == 0
    assert solution[-1].end == profile.n - 1


@given(instances())
@settings(max_examples=80, deadline=None)
def test_every_strategy_returns_valid_schedules(instance):
    chain, resources = instance
    profile = ChainProfile(chain)
    strategies = [herad, twocatac, fertac]
    if resources.big > 0:
        strategies.append(otac_big)
    if resources.little > 0:
        strategies.append(otac_little)
    for strategy in strategies:
        outcome = strategy(profile, resources)
        assert outcome.feasible
        _check_structure(outcome.solution, profile, resources)
        assert outcome.period == outcome.solution.period(profile)


@given(instances())
@settings(max_examples=60, deadline=None)
def test_herad_is_optimal_and_dominates(instance):
    chain, resources = instance
    profile = ChainProfile(chain)
    optimal = herad(profile, resources)
    oracle = brute_force_optimal(profile, resources)
    assert optimal.period == oracle.period(profile)
    for heuristic in (twocatac, fertac):
        assert heuristic(profile, resources).period >= optimal.period - 1e-9


@given(instances(max_tasks=8))
@settings(max_examples=60, deadline=None)
def test_fast_herad_equals_reference(instance):
    chain, resources = instance
    profile = ChainProfile(chain)
    fast = herad(profile, resources, merge=False)
    ref = herad_reference(profile, resources)
    assert fast.period == ref.period(profile)
    assert fast.solution.core_usage() == ref.core_usage()


@given(instances())
@settings(max_examples=40, deadline=None)
def test_bounds_bracket_the_optimum(instance):
    chain, resources = instance
    profile = ChainProfile(chain)
    bounds = period_bounds(profile, resources)
    optimum = herad(profile, resources).period
    assert bounds.lower <= optimum + 1e-9
    assert optimum <= bounds.upper + 1e-9


@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(1, 3)),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=100, deadline=None)
def test_compare_cells_fold_is_order_insensitive(raw_cells):
    """The CompareCells fold equals the lexicographic (P, acc_b, acc_l)
    minimum regardless of candidate order — the basis of the vectorized
    HeRAD (DESIGN.md §5)."""
    cells = [
        _Cell(pbest=float(p), acc_b=b, acc_l=l) for b, l, p in raw_cells
    ]
    outcomes = set()
    permutations = itertools.islice(itertools.permutations(cells), 24)
    for perm in permutations:
        current = perm[0]
        for new in perm[1:]:
            current = _compare_cells(current, new)
        outcomes.add((current.pbest, current.acc_b, current.acc_l))
    expected = min((c.pbest, c.acc_b, c.acc_l) for c in cells)
    assert outcomes == {expected}


@given(instances(max_tasks=6, max_cores=2))
@settings(max_examples=40, deadline=None)
def test_merge_flag_never_changes_period_or_usage(instance):
    chain, resources = instance
    merged = herad(chain, resources, merge=True)
    plain = herad(chain, resources, merge=False)
    assert merged.period == plain.period
    assert merged.solution.core_usage() == plain.solution.core_usage()


@given(instances(max_tasks=6, max_cores=2), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_adding_cores_never_hurts(instance, extra):
    chain, resources = instance
    base = herad(chain, resources).period
    more_big = herad(
        chain, Resources(resources.big + extra, resources.little)
    ).period
    more_little = herad(
        chain, Resources(resources.big, resources.little + extra)
    ).period
    assert more_big <= base + 1e-12
    assert more_little <= base + 1e-12


@given(instances(max_tasks=6, max_cores=3))
@settings(max_examples=40, deadline=None)
def test_memoized_twocatac_is_equivalent(instance):
    chain, resources = instance
    plain = twocatac(chain, resources)
    memo = twocatac(chain, resources, memoize=True)
    assert plain.period == memo.period
    assert plain.solution.core_usage() == memo.solution.core_usage()
