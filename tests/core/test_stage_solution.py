"""Tests for repro.core.stage and repro.core.solution."""

from __future__ import annotations

import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.errors import InvalidChainError
from repro.core.solution import CoreUsage, Solution
from repro.core.stage import Stage, stage_weight_or_inf
from repro.core.task import TaskChain
from repro.core.types import CoreType, Resources


class TestStage:
    def test_num_tasks(self):
        assert Stage(1, 3, 1, CoreType.BIG).num_tasks == 3

    def test_invalid_interval(self):
        with pytest.raises(InvalidChainError):
            Stage(3, 1, 1, CoreType.BIG)
        with pytest.raises(InvalidChainError):
            Stage(-1, 0, 1, CoreType.BIG)

    def test_needs_a_core(self):
        with pytest.raises(InvalidChainError):
            Stage(0, 0, 0, CoreType.BIG)

    def test_weight_and_latency_differ_under_replication(self, simple_profile):
        stage = Stage(0, 1, 2, CoreType.BIG)
        # Replicated: weight = 14/2, but each frame still takes 14.
        assert stage.weight(simple_profile) == 7.0
        assert stage.latency(simple_profile) == 14.0

    def test_sequential_stage_weight_equals_latency(self, simple_profile):
        stage = Stage(0, 2, 3, CoreType.BIG)
        assert stage.weight(simple_profile) == stage.latency(simple_profile) == 17.0

    def test_effective_cores(self, simple_profile):
        assert Stage(0, 1, 2, CoreType.BIG).effective_cores(simple_profile) == 2
        assert Stage(0, 2, 3, CoreType.BIG).effective_cores(simple_profile) == 1

    def test_render(self):
        assert Stage(0, 4, 3, CoreType.LITTLE).render() == "(5,3L)"
        assert Stage(2, 2, 1, CoreType.BIG).render() == "(1,1B)"

    def test_with_cores(self):
        assert Stage(0, 1, 1, CoreType.BIG).with_cores(4).cores == 4

    def test_stage_weight_or_inf(self, simple_profile):
        assert stage_weight_or_inf(simple_profile, 0, 1, 0, CoreType.BIG) == float("inf")
        assert stage_weight_or_inf(simple_profile, 0, 1, 2, CoreType.BIG) == 7.0


class TestSolution:
    def make(self) -> Solution:
        return Solution.from_triplets(
            [(0, 1, 2, "B"), (2, 2, 1, "L"), (3, 3, 1, "B")]
        )

    def test_contiguity_enforced(self):
        with pytest.raises(InvalidChainError):
            Solution(
                [Stage(0, 1, 1, CoreType.BIG), Stage(3, 3, 1, CoreType.BIG)]
            )

    def test_period_is_max_stage_weight(self, simple_profile):
        sol = self.make()
        # Weights: 14/2 = 7 (B), 8 (L seq), 7 (B).
        assert sol.period(simple_profile) == 8.0

    def test_empty_period_infinite(self, simple_profile):
        assert Solution.empty().period(simple_profile) == float("inf")

    def test_throughput_inverse(self, simple_profile):
        sol = self.make()
        assert sol.throughput(simple_profile) == pytest.approx(1 / 8.0)
        assert Solution.empty().throughput(simple_profile) == 0.0

    def test_latency_sums_stage_latencies(self, simple_profile):
        sol = self.make()
        # Stage latencies: 14 (B, full interval despite 2 replicas),
        # 8 (task 2 on L), 7 (task 3 on B).
        assert sol.latency(simple_profile) == 14 + 8 + 7

    def test_latency_of_empty_solution(self, simple_profile):
        assert Solution.empty().latency(simple_profile) == float("inf")

    def test_latency_at_least_period(self, simple_profile):
        sol = self.make()
        assert sol.latency(simple_profile) >= sol.period(simple_profile)

    def test_merging_reduces_latency_metric(self, simple_profile):
        # Fewer stages -> the same tasks counted once, so latency can only
        # shrink or stay equal under merging.
        from repro.core.merge import merge_replicable_stages

        sol = Solution.from_triplets(
            [(0, 0, 1, "B"), (1, 1, 1, "B"), (2, 3, 1, "B")]
        )
        merged = merge_replicable_stages(sol, simple_profile)
        assert merged.latency(simple_profile) <= sol.latency(simple_profile)

    def test_bottleneck(self, simple_profile):
        assert self.make().bottleneck(simple_profile).start == 2

    def test_bottleneck_empty_raises(self, simple_profile):
        with pytest.raises(InvalidChainError):
            Solution.empty().bottleneck(simple_profile)

    def test_core_usage(self):
        usage = self.make().core_usage()
        assert usage == CoreUsage(big=3, little=1)
        assert usage.total == 4
        assert tuple(usage) == (3, 1)

    def test_covers(self, simple_profile):
        assert self.make().covers(simple_profile)
        partial = Solution([Stage(0, 2, 1, CoreType.BIG)])
        assert not partial.covers(simple_profile)

    def test_is_valid_full(self, simple_profile):
        sol = self.make()
        assert sol.is_valid(simple_profile, Resources(3, 1))
        assert sol.is_valid(simple_profile, Resources(3, 1), period=8.0)
        assert not sol.is_valid(simple_profile, Resources(3, 1), period=7.9)
        assert not sol.is_valid(simple_profile, Resources(2, 1))
        assert not sol.is_valid(simple_profile, Resources(3, 0))
        assert not Solution.empty().is_valid(simple_profile, Resources(3, 1))

    def test_is_valid_requires_coverage(self, simple_profile):
        partial = Solution([Stage(0, 2, 1, CoreType.BIG)])
        assert not partial.is_valid(simple_profile, Resources(4, 4))

    def test_render(self):
        assert self.make().render() == "(2,2B),(1,1L),(1,1B)"

    def test_describe_contains_period(self, simple_profile):
        assert "period" in self.make().describe(simple_profile)

    def test_single_stage_constructor(self, simple_profile):
        sol = Solution.single_stage(simple_profile, 2, CoreType.LITTLE)
        assert sol.covers(simple_profile)
        assert sol.num_stages == 1
        assert sol[0].cores == 2

    def test_container_protocol(self):
        sol = self.make()
        assert len(sol) == 3
        assert sol[1].core_type is CoreType.LITTLE
        assert [s.start for s in sol] == [0, 2, 3]

    def test_period_accepts_chain_directly(self, simple_chain):
        assert self.make().period(simple_chain) == 8.0
