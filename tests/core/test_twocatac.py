"""Tests for repro.core.twocatac (Algos. 5-6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.fertac import fertac
from repro.core.herad import herad
from repro.core.task import TaskChain
from repro.core.twocatac import (
    _Partial,
    choose_best,
    twocatac,
    twocatac_compute_solution,
)
from repro.core.types import Resources
from repro.workloads.synthetic import GeneratorConfig, random_chain


class TestChooseBest:
    def p(self, big: int, little: int) -> _Partial:
        return _Partial(stages=(), used=(big, little))

    def test_single_valid_branch(self):
        only = self.p(1, 0)
        assert choose_best(only, None) is only
        assert choose_best(None, only) is only
        assert choose_best(None, None) is None

    def test_prefers_big_to_little_exchange(self):
        # Branch B uses more little & fewer big than branch L: pick B.
        branch_b = self.p(1, 3)
        branch_l = self.p(2, 1)
        assert choose_best(branch_b, branch_l) is branch_b

    def test_prefers_little_branch_on_reverse_exchange(self):
        branch_b = self.p(3, 1)
        branch_l = self.p(1, 2)
        assert choose_best(branch_b, branch_l) is branch_l

    def test_fewer_total_cores_breaks_remaining_ties(self):
        branch_b = self.p(2, 2)
        branch_l = self.p(2, 3)
        assert choose_best(branch_b, branch_l) is branch_b
        assert choose_best(self.p(2, 3), self.p(2, 2)) is not None

    def test_full_tie_prefers_little_branch(self):
        branch_b = self.p(2, 2)
        branch_l = self.p(2, 2)
        assert choose_best(branch_b, branch_l) is branch_l


class TestComputeSolution:
    def test_explores_both_types(self):
        # A chain where the best use of cores mixes types.
        chain = TaskChain.from_weights(
            [10, 1, 10], [11, 2, 30], [False, False, False]
        )
        profile = ChainProfile(chain)
        sol = twocatac_compute_solution(profile, Resources(2, 1), 11.0)
        assert not sol.is_empty
        assert sol.period(profile) <= 11.0

    def test_empty_when_infeasible(self):
        chain = TaskChain.from_weights([50], [50], [False])
        profile = ChainProfile(chain)
        assert twocatac_compute_solution(
            profile, Resources(1, 1), 10.0
        ).is_empty

    def test_memoized_matches_plain(self):
        rng = np.random.default_rng(3)
        config = GeneratorConfig(num_tasks=10, stateless_ratio=0.5)
        for _ in range(20):
            profile = ChainProfile(random_chain(rng, config))
            resources = Resources(3, 3)
            for period in (50.0, 120.0, 300.0):
                plain = twocatac_compute_solution(profile, resources, period)
                memo = twocatac_compute_solution(
                    profile, resources, period, memoize=True
                )
                assert plain.is_empty == memo.is_empty
                if not plain.is_empty:
                    assert plain.period(profile) == memo.period(profile)
                    assert plain.core_usage() == memo.core_usage()


class TestSchedule:
    def test_valid_and_bounded_by_optimal(self, simple_profile):
        resources = Resources(2, 2)
        outcome = twocatac(simple_profile, resources)
        optimal = herad(simple_profile, resources)
        assert outcome.solution.is_valid(simple_profile, resources)
        assert outcome.period >= optimal.period - 1e-9

    def test_at_least_as_good_as_fertac_on_average(self):
        """The paper finds 2CATAC's schedules dominate FERTAC's on average."""
        rng = np.random.default_rng(21)
        config = GeneratorConfig(num_tasks=12, stateless_ratio=0.5)
        resources = Resources(6, 6)
        two, fer = [], []
        for _ in range(25):
            profile = ChainProfile(random_chain(rng, config))
            two.append(twocatac(profile, resources).period)
            fer.append(fertac(profile, resources).period)
        assert float(np.mean(two)) <= float(np.mean(fer)) + 1e-9

    def test_memoized_schedule_matches(self, simple_profile, balanced_resources):
        plain = twocatac(simple_profile, balanced_resources)
        memo = twocatac(simple_profile, balanced_resources, memoize=True)
        assert plain.period == memo.period
        assert plain.solution.core_usage() == memo.solution.core_usage()

    def test_handles_single_type_budgets(self, simple_profile):
        assert twocatac(simple_profile, Resources(2, 0)).feasible
        assert twocatac(simple_profile, Resources(0, 2)).feasible
