"""The certificate auditor: accepts real solutions, rejects each corruption."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.core import (
    CertificationError,
    CoreType,
    InvalidChainError,
    Resources,
    Solution,
    Stage,
    TaskChain,
    audit_solution,
    certify_outcome,
    certify_solution,
    get_info,
    herad,
    optimality_bracket,
    strategy_names,
)
from repro.core.chain_stats import ChainProfile


@pytest.fixture
def chain() -> TaskChain:
    return TaskChain.from_weights(
        weights_big=[3, 5, 2, 7, 1, 4, 6, 2],
        weights_little=[6, 10, 4, 14, 2, 8, 12, 4],
        replicable=[False, True, True, False, True, True, False, True],
    )


@pytest.fixture
def resources() -> Resources:
    return Resources(big=3, little=4)


def _raw_solution(stages) -> Solution:
    """Assemble a Solution bypassing constructor validation.

    The auditor must catch corruption even when it could never pass the
    constructors — certificates are the independent line of defense.
    """
    solution = Solution.__new__(Solution)
    object.__setattr__(solution, "stages", tuple(stages))
    return solution


def _codes(report) -> set:
    return {v.code for v in report.violations}


class TestAcceptance:
    def test_every_strategy_certifies(self, chain, resources):
        for name in strategy_names(paper_only=False):
            info = get_info(name)
            outcome = info.func(chain, resources)
            report = certify_outcome(
                outcome, chain, resources, optimal=info.optimal, context=name
            )
            assert report.ok
            assert math.isclose(report.period, outcome.period, rel_tol=1e-9)

    def test_profile_and_chain_audit_identically(self, chain, resources):
        outcome = herad(chain, resources)
        via_chain = certify_outcome(outcome, chain, resources, optimal=True)
        via_profile = certify_outcome(
            outcome, ChainProfile(chain), resources, optimal=True
        )
        assert via_chain.period == via_profile.period
        assert via_chain.ok and via_profile.ok

    def test_claims_within_tolerance_pass(self, chain, resources):
        outcome = herad(chain, resources)
        report = audit_solution(
            outcome.solution,
            chain,
            resources,
            claimed_period=outcome.period * (1.0 + 1e-12),
        )
        assert report.ok


class TestCorruptions:
    def test_empty_solution(self, chain, resources):
        report = audit_solution(Solution(()), chain, resources)
        assert _codes(report) == {"empty"}
        assert report.period == math.inf

    def test_dropped_last_stage_breaks_coverage(self, chain, resources):
        outcome = herad(chain, resources)
        truncated = Solution(outcome.solution.stages[:-1])
        report = audit_solution(truncated, chain, resources)
        assert "coverage" in _codes(report)

    def test_late_first_stage_breaks_coverage(self, chain, resources):
        shifted = Solution([Stage(1, len(chain.tasks) - 1, 1, CoreType.BIG)])
        report = audit_solution(shifted, chain, resources)
        assert "coverage" in _codes(report)

    def test_gap_between_stages_breaks_contiguity(self, chain, resources):
        n = len(chain.tasks)
        gapped = _raw_solution(
            [Stage(0, 2, 1, CoreType.BIG), Stage(4, n - 1, 1, CoreType.LITTLE)]
        )
        report = audit_solution(gapped, chain, resources)
        assert "contiguity" in _codes(report)

    def test_out_of_range_stage(self, chain, resources):
        n = len(chain.tasks)
        overrun = _raw_solution([Stage(0, n + 3, 1, CoreType.BIG)])
        report = audit_solution(overrun, chain, resources)
        assert "stage-bounds" in _codes(report)

    def test_zero_core_stage(self, chain, resources):
        n = len(chain.tasks)
        bogus_stage = _raw_stage(0, n - 1, 0, CoreType.BIG)
        report = audit_solution(
            _raw_solution([bogus_stage]), chain, resources
        )
        assert "stage-cores" in _codes(report)

    def test_budget_overrun(self, resources):
        replicable = TaskChain.from_weights(
            weights_big=[2, 3, 4],
            weights_little=[4, 6, 8],
            replicable=[True, True, True],
        )
        greedy = Solution([Stage(0, 2, 100, CoreType.BIG)])
        report = audit_solution(greedy, replicable, resources)
        assert "budget" in _codes(report)

    def test_wasted_cores_on_sequential_stage(self, chain, resources):
        n = len(chain.tasks)
        wasteful = Solution([Stage(0, n - 1, 2, CoreType.BIG)])
        report = audit_solution(wasteful, chain, resources)
        assert "wasted-cores" in _codes(report)

    def test_period_mismatch(self, chain, resources):
        outcome = herad(chain, resources)
        report = audit_solution(
            outcome.solution,
            chain,
            resources,
            claimed_period=outcome.period * 2.0,
        )
        assert "period-mismatch" in _codes(report)

    def test_usage_mismatch(self, chain, resources):
        outcome = herad(chain, resources)
        usage = outcome.solution.core_usage()
        report = audit_solution(
            outcome.solution,
            chain,
            resources,
            claimed_big=usage.big + 1,
            claimed_little=usage.little,
        )
        assert "usage-mismatch" in _codes(report)

    def test_target_period_exceeded(self, chain, resources):
        outcome = herad(chain, resources)
        report = audit_solution(
            outcome.solution,
            chain,
            resources,
            target_period=outcome.period / 2.0,
        )
        assert "target-period" in _codes(report)

    def test_tampered_outcome_is_rejected(self, chain, resources):
        outcome = herad(chain, resources)
        tampered = dataclasses.replace(outcome, period=outcome.period * 0.5)
        with pytest.raises(CertificationError, match="period-mismatch"):
            certify_outcome(tampered, chain, resources, context="herad")

    def test_certify_solution_raises_with_context(self, chain, resources):
        outcome = herad(chain, resources)
        with pytest.raises(CertificationError, match="tampered-run"):
            certify_solution(
                outcome.solution,
                chain,
                resources,
                claimed_period=outcome.period + 1.0,
                context="tampered-run",
            )


def _raw_stage(start: int, end: int, cores: int, core_type: CoreType) -> Stage:
    """A Stage bypassing __post_init__ validation (corruption fixtures)."""
    stage = Stage.__new__(Stage)
    object.__setattr__(stage, "start", start)
    object.__setattr__(stage, "end", end)
    object.__setattr__(stage, "cores", cores)
    object.__setattr__(stage, "core_type", core_type)
    return stage


class TestOptimalityBracket:
    def test_bracket_is_ordered_and_contains_herad(self, chain, resources):
        lower, upper = optimality_bracket(chain, resources)
        assert 0 < lower <= upper
        outcome = herad(chain, resources)
        assert lower <= outcome.period * (1 + 1e-9)
        assert outcome.period <= upper * (1 + 1e-9)

    def test_impossibly_fast_schedule_violates_lower_bound(self, resources):
        replicable = TaskChain.from_weights(
            weights_big=[2, 3, 4],
            weights_little=[4, 6, 8],
            replicable=[True, True, True],
        )
        overpacked = Solution([Stage(0, 2, 1000, CoreType.BIG)])
        report = audit_solution(
            overpacked, replicable, resources, optimal=True
        )
        assert "optimality-lower-bound" in _codes(report)
        assert "budget" in _codes(report)

    def test_slow_schedule_violates_upper_bound(self, chain, resources):
        whole = Solution([Stage(0, len(chain.tasks) - 1, 1, CoreType.LITTLE)])
        report = audit_solution(whole, chain, resources, optimal=True)
        assert "optimality-upper-bound" in _codes(report)

    def test_empty_budget_rejected(self, chain):
        from repro.core import InvalidPlatformError

        with pytest.raises(InvalidPlatformError):
            optimality_bracket(chain, Resources(0, 0))


class TestInputValidation:
    def test_foreign_chain_type_rejected(self, resources):
        with pytest.raises(InvalidChainError, match="TaskChain or ChainProfile"):
            audit_solution(Solution(()), object(), resources)
