"""Tests for the TaskChain content fingerprint (the memo-cache key)."""

from __future__ import annotations

import numpy as np

from repro.core.chain_stats import ChainProfile
from repro.core.task import TaskChain
from repro.workloads.synthetic import GeneratorConfig, chain_batch


def _chain(wb, wl, rep, name="chain"):
    return TaskChain.from_weights(wb, wl, rep, name=name)


class TestFingerprint:
    def test_equal_chains_collide(self):
        a = _chain([1, 2, 3], [2, 4, 6], [True, False, True])
        b = _chain([1, 2, 3], [2, 4, 6], [True, False, True])
        assert a is not b
        assert a.fingerprint == b.fingerprint

    def test_name_does_not_matter(self):
        a = _chain([1, 2], [3, 4], [True, False], name="alpha")
        b = _chain([1, 2], [3, 4], [True, False], name="beta")
        assert a.fingerprint == b.fingerprint

    def test_big_weight_perturbation_changes_it(self):
        a = _chain([1, 2, 3], [2, 4, 6], [True, False, True])
        b = _chain([1, 2.0000001, 3], [2, 4, 6], [True, False, True])
        assert a.fingerprint != b.fingerprint

    def test_little_weight_perturbation_changes_it(self):
        a = _chain([1, 2], [2, 4], [True, False])
        b = _chain([1, 2], [2, 5], [True, False])
        assert a.fingerprint != b.fingerprint

    def test_replicability_flip_changes_it(self):
        a = _chain([1, 2], [2, 4], [True, False])
        b = _chain([1, 2], [2, 4], [True, True])
        assert a.fingerprint != b.fingerprint

    def test_task_order_matters(self):
        a = _chain([1, 2], [2, 4], [True, True])
        b = _chain([2, 1], [4, 2], [True, True])
        assert a.fingerprint != b.fingerprint

    def test_length_extension_distinct(self):
        # A 2-task chain and a 3-task chain sharing a prefix must differ.
        a = _chain([1, 2], [1, 2], [True, True])
        b = _chain([1, 2, 3], [1, 2, 3], [True, True, True])
        assert a.fingerprint != b.fingerprint

    def test_stable_format_and_cached(self):
        chain = _chain([1], [2], [False])
        fp = chain.fingerprint
        assert isinstance(fp, str) and len(fp) == 32
        int(fp, 16)  # hex digest
        assert chain.fingerprint is fp  # computed once, then cached

    def test_profile_delegates_to_chain(self):
        chain = _chain([1, 2, 3], [2, 4, 6], [True, False, True])
        assert ChainProfile(chain).fingerprint == chain.fingerprint

    def test_random_population_has_no_collisions(self):
        config = GeneratorConfig(num_tasks=12, stateless_ratio=0.5)
        prints = [c.fingerprint for c in chain_batch(200, config, seed=3)]
        assert len(set(prints)) == len(prints)

    def test_same_seed_same_fingerprints(self):
        config = GeneratorConfig(num_tasks=8, stateless_ratio=0.2)
        a = [c.fingerprint for c in chain_batch(20, config, seed=7)]
        b = [c.fingerprint for c in chain_batch(20, config, seed=7)]
        assert a == b

    def test_numpy_scalar_inputs_hash_like_floats(self):
        a = _chain(
            np.array([1.0, 2.0]), np.array([2.0, 4.0]), np.array([True, False])
        )
        b = _chain([1.0, 2.0], [2.0, 4.0], [True, False])
        assert a.fingerprint == b.fingerprint
