"""Tests for repro.core.types (CoreType, Resources)."""

from __future__ import annotations

import pytest

from repro.core.types import INFINITY, CoreType, Resources


class TestCoreType:
    def test_two_members(self):
        assert set(CoreType) == {CoreType.BIG, CoreType.LITTLE}

    def test_other_flips(self):
        assert CoreType.BIG.other is CoreType.LITTLE
        assert CoreType.LITTLE.other is CoreType.BIG

    def test_symbols(self):
        assert CoreType.BIG.symbol == "B"
        assert CoreType.LITTLE.symbol == "L"

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("big", CoreType.BIG),
            ("B", CoreType.BIG),
            ("performance", CoreType.BIG),
            ("little", CoreType.LITTLE),
            ("l", CoreType.LITTLE),
            ("Efficiency", CoreType.LITTLE),
            (0, CoreType.BIG),
            (1, CoreType.LITTLE),
            (CoreType.BIG, CoreType.BIG),
        ],
    )
    def test_parse_accepts(self, value, expected):
        assert CoreType.parse(value) is expected

    @pytest.mark.parametrize("value", ["medium", "", 3, None, 2.5])
    def test_parse_rejects(self, value):
        with pytest.raises((ValueError, KeyError)):
            CoreType.parse(value)

    def test_int_values_stable(self):
        # The vectorized code indexes arrays with these values.
        assert int(CoreType.BIG) == 0
        assert int(CoreType.LITTLE) == 1


class TestResources:
    def test_total(self):
        assert Resources(3, 5).total == 8

    def test_count(self):
        r = Resources(3, 5)
        assert r.count(CoreType.BIG) == 3
        assert r.count(CoreType.LITTLE) == 5

    def test_minus_big(self):
        assert Resources(3, 5).minus(CoreType.BIG, 2) == Resources(1, 5)

    def test_minus_little(self):
        assert Resources(3, 5).minus(CoreType.LITTLE, 5) == Resources(3, 0)

    def test_minus_below_zero_raises(self):
        with pytest.raises(ValueError):
            Resources(1, 1).minus(CoreType.BIG, 2)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Resources(-1, 2)

    def test_empty_budget_allowed_and_exhausted(self):
        assert Resources(0, 0).is_exhausted()
        assert not Resources(1, 0).is_exhausted()

    def test_fits(self):
        r = Resources(2, 3)
        assert r.fits(2, 3)
        assert r.fits(0, 0)
        assert not r.fits(3, 0)
        assert not r.fits(0, 4)

    def test_iter_unpacks(self):
        b, l = Resources(4, 7)
        assert (b, l) == (4, 7)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Resources(1, 1).big = 5  # type: ignore[misc]


def test_infinity_is_float_inf():
    assert INFINITY == float("inf")
