"""Bitwise k=2 equivalence against the pre-refactor oracle fixture.

``tests/data/k2_oracle.json`` captures, for 30 chains x 6 budgets x every
registry strategy, the exact pre-k-type-refactor outputs: the period as a
``float.hex()`` round-trip, the per-type core usage, and the rendered
schedule.  The k-type platform refactor promises that two-type behavior is
*bitwise* identical — not merely close — so this test replays the whole
fixture against the live implementation.

The chains are regenerated from the same seeds; the stored fingerprints
double-check that the workload generators (and the fingerprint algorithm
itself) did not drift either.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.registry import STRATEGIES
from repro.core.types import Resources
from repro.workloads import generators as g
from repro.workloads.synthetic import GeneratorConfig, chain_batch

_FIXTURE = Path(__file__).resolve().parent.parent / "data" / "k2_oracle.json"


def _oracle_chains():
    chains = []
    for sr in (0.2, 0.5, 0.8):
        cfg = GeneratorConfig(num_tasks=20, stateless_ratio=sr)
        chains.extend(chain_batch(8, cfg, seed=int(sr * 10)))
    chains += [
        g.fully_replicable_chain(12),
        g.fully_sequential_chain(12),
        g.alternating_chain(15),
        g.heavy_tail_chain(10),
        g.inverted_speed_chain(14),
        g.uniform_chain(1),
    ]
    return chains


@pytest.fixture(scope="module")
def oracle():
    return json.loads(_FIXTURE.read_text())


@pytest.fixture(scope="module")
def chains():
    return _oracle_chains()


def test_fixture_covers_every_prerefactor_strategy(oracle):
    strategies = {row["strategy"] for row in oracle["rows"]}
    # ktype_ref joined the registry *with* the refactor, so it has no
    # pre-refactor oracle; everything older must be covered.
    assert strategies == set(STRATEGIES) - {"ktype_ref"}
    assert len(oracle["rows"]) == oracle["meta"]["chains"] * len(
        oracle["meta"]["budgets"]
    ) * len(strategies)


def test_chain_fingerprints_unchanged(oracle, chains):
    by_index = {}
    for row in oracle["rows"]:
        by_index.setdefault(row["chain"], row["fp"])
    assert len(by_index) == len(chains)
    for index, chain in enumerate(chains):
        assert chain.fingerprint == by_index[index], (
            f"chain {index}: fingerprint drifted — either the workload "
            "generators or the fingerprint algorithm changed at k=2"
        )


def test_every_strategy_bitwise_identical_at_k2(oracle, chains):
    mismatches = []
    for row in oracle["rows"]:
        chain = chains[row["chain"]]
        resources = Resources(*row["budget"])
        outcome = STRATEGIES[row["strategy"]].func(chain, resources)
        usage = outcome.solution.core_usage()
        got = {
            "period_hex": outcome.period.hex(),
            "usage": [usage.big, usage.little],
            "render": outcome.solution.render(),
        }
        want = {
            "period_hex": row["period_hex"],
            "usage": row["usage"],
            "render": row["render"],
        }
        if got != want:
            mismatches.append(
                (row["chain"], row["budget"], row["strategy"], want, got)
            )
    assert not mismatches, (
        f"{len(mismatches)} of {len(oracle['rows'])} oracle rows diverged "
        f"from the pre-refactor outputs; first: {mismatches[0]}"
    )
