"""Tests for repro.analysis.gantt."""

from __future__ import annotations

import pytest

from repro.analysis.gantt import render_gantt
from repro.core.herad import herad
from repro.core.task import TaskChain
from repro.core.types import Resources
from repro.streampu.pipeline import PipelineSpec
from repro.streampu.simulator import simulate_pipeline


@pytest.fixture
def simulation(simple_chain, balanced_resources):
    solution = herad(simple_chain, balanced_resources).solution
    spec = PipelineSpec.from_solution(solution, simple_chain)
    return simulate_pipeline(spec, num_frames=30)


def test_renders_one_row_per_stage(simulation):
    text = render_gantt(simulation, max_frames=8)
    rows = [line for line in text.splitlines() if line.lstrip().startswith("s")]
    assert len(rows) == simulation.spec.num_stages


def test_frame_digits_present(simulation):
    text = render_gantt(simulation, max_frames=5)
    for digit in "01234":
        assert digit in text


def test_core_type_symbols_shown(simulation):
    text = render_gantt(simulation, max_frames=4)
    assert "B" in text or "L" in text


def test_max_frames_validated(simulation):
    with pytest.raises(ValueError):
        render_gantt(simulation, max_frames=0)


def test_narrow_width_still_renders(simulation):
    text = render_gantt(simulation, max_frames=4, width=20)
    assert "Gantt" in text
