"""Tests for repro.analysis.heatmap and repro.analysis.tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.heatmap import usage_heatmap
from repro.analysis.tables import render_step_curves, render_table


class TestUsageHeatmap:
    def test_counts_percentages(self):
        hm = usage_heatmap(
            strategy_big=[3, 3, 2],
            strategy_little=[2, 1, 1],
            optimal_big=[2, 3, 2],
            optimal_little=[1, 1, 1],
        )
        # Deltas: (1,1), (0,0), (0,0).
        assert hm.at(0, 0) == pytest.approx(200 / 3)
        assert hm.at(1, 1) == pytest.approx(100 / 3)
        assert hm.at(5, 5) == 0.0
        assert hm.num_chains == 3

    def test_share_within_extra_cores(self):
        hm = usage_heatmap([3, 4], [1, 2], [2, 2], [1, 1])
        # Deltas: (1, 0) -> 1 extra; (2, 1) -> 3 extra.
        assert hm.share_within_extra_cores(1) == pytest.approx(50.0)
        assert hm.share_within_extra_cores(3) == pytest.approx(100.0)

    def test_mask_selects(self):
        hm = usage_heatmap(
            [3, 4], [1, 2], [2, 2], [1, 1], mask=np.array([True, False])
        )
        assert hm.num_chains == 1
        assert hm.at(1, 0) == pytest.approx(100.0)

    def test_population_denominator(self):
        hm = usage_heatmap(
            [3, 4], [1, 2], [2, 2], [1, 1],
            mask=np.array([True, False]),
            population=2,
        )
        assert hm.at(1, 0) == pytest.approx(50.0)

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            usage_heatmap([1], [1], [1], [1], mask=np.array([False]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            usage_heatmap([1, 2], [1], [1, 2], [1, 2])

    def test_render_contains_deltas(self):
        hm = usage_heatmap([3], [0], [1], [2])
        text = hm.render()
        assert "2" in text and "-2" in text


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["bbbb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all("|" in line for line in lines[1:2])
        assert "bbbb" in text

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])


class TestRenderStepCurves:
    def test_draws_all_curves(self):
        curves = {
            "A": (np.array([1.0, 1.2]), np.array([0.5, 1.0])),
            "B": (np.array([1.0, 1.4]), np.array([0.2, 1.0])),
        }
        text = render_step_curves(curves, (1.0, 1.5))
        assert "o = A" in text
        assert "x = B" in text
        assert "slowdown" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_step_curves({}, (1.0, 2.0))

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            render_step_curves(
                {"A": (np.array([1.0]), np.array([1.0]))}, (2.0, 1.0)
            )
