"""Tests for repro.analysis.slowdown and repro.analysis.stats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.slowdown import slowdown_cdf, slowdown_ratios
from repro.analysis.stats import aggregate_scenario


class TestSlowdownRatios:
    def test_basic(self):
        out = slowdown_ratios([2.0, 3.0], [1.0, 3.0])
        np.testing.assert_allclose(out, [2.0, 1.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            slowdown_ratios([1.0], [1.0, 2.0])

    def test_nonpositive_optimal(self):
        with pytest.raises(ValueError):
            slowdown_ratios([1.0], [0.0])


class TestCdf:
    def test_step_values(self):
        cdf = slowdown_cdf([1.0, 1.0, 1.2, 1.5])
        assert cdf.at(0.9) == 0.0
        assert cdf.at(1.0) == pytest.approx(0.5)
        assert cdf.at(1.2) == pytest.approx(0.75)
        assert cdf.at(2.0) == 1.0

    def test_fraction_optimal(self):
        cdf = slowdown_cdf([1.0, 1.0, 1.3])
        assert cdf.fraction_optimal == pytest.approx(2 / 3)

    def test_quantile(self):
        cdf = slowdown_cdf([1.0, 1.1, 1.2, 1.3])
        assert cdf.quantile(0.5) == pytest.approx(1.1)
        assert cdf.quantile(1.0) == pytest.approx(1.3)

    def test_quantile_validated(self):
        cdf = slowdown_cdf([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            slowdown_cdf([])

    @given(st.lists(st.floats(1.0, 10.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_cdf_is_monotone_and_normalized(self, ratios):
        cdf = slowdown_cdf(ratios)
        assert (np.diff(cdf.cumulative) >= 0).all()
        assert cdf.cumulative[-1] == pytest.approx(1.0)
        assert cdf.at(float(max(ratios))) == pytest.approx(1.0)


class TestAggregateScenario:
    def test_paper_style_tuple(self):
        stats = aggregate_scenario(
            "fertac",
            periods=[10.0, 12.0, 11.0, 10.0],
            optimal_periods=[10.0, 10.0, 10.0, 10.0],
            big_used=[3, 4, 2, 3],
            little_used=[1, 1, 2, 1],
        )
        pct, avg, med, mx = stats.period_tuple()
        assert pct == pytest.approx(50.0)
        assert avg == pytest.approx(np.mean([1.0, 1.2, 1.1, 1.0]))
        assert med == pytest.approx(1.05)
        assert mx == pytest.approx(1.2)
        assert stats.usage_pair() == (pytest.approx(3.0), pytest.approx(1.25))

    def test_render_matches_paper_format(self):
        stats = aggregate_scenario(
            "herad", [5.0], [5.0], [2], [2]
        )
        assert stats.render_period() == "( 100.0%, 1.00, 1.00, 1.00 )"
        assert stats.render_usage() == "(  2.00,  2.00 )"

    def test_usage_shape_validated(self):
        with pytest.raises(ValueError):
            aggregate_scenario("x", [1.0], [1.0], [1, 2], [1])

    def test_optimal_strategy_is_all_optimal(self):
        stats = aggregate_scenario(
            "herad", [3.0, 4.0], [3.0, 4.0], [1, 1], [0, 0]
        )
        assert stats.percent_optimal == 100.0
        assert stats.max_slowdown == 1.0
