#!/usr/bin/env python3
"""Visualize a pipelined execution and the period/power tradeoff.

Two visual tools on top of the DVB-S2 receiver:

1. an ASCII **Gantt chart** of the simulated pipeline fill — watch the
   frames ripple through the stages and the replicated stages overlap;
2. the **period/power Pareto front** over core budgets, using the power
   model from the paper's future-work direction (3:1 big:little draw).

Run:  python examples/pipeline_visualization.py
"""

from __future__ import annotations

from repro import PowerModel, Resources, herad, pareto_front
from repro.analysis import render_gantt
from repro.sdr import dvbs2_mac_studio_chain
from repro.streampu import PipelineSpec, simulate_pipeline


def main() -> None:
    chain = dvbs2_mac_studio_chain()

    # --- Gantt of the half-Mac-Studio optimal schedule -------------------
    outcome = herad(chain, Resources(8, 2))
    print("Schedule:", outcome.solution.render(),
          f" period={outcome.period:.1f} us")
    spec = PipelineSpec.from_solution(outcome.solution, chain)
    sim = simulate_pipeline(spec, num_frames=64)
    print()
    print(render_gantt(sim, max_frames=10))
    print()

    # --- Period/power Pareto front over budgets --------------------------
    model = PowerModel(big_active=3.0, little_active=1.0)
    candidates = []
    for big, little in [(2, 0), (4, 0), (8, 0), (2, 2), (4, 4), (8, 2),
                        (0, 4), (16, 4)]:
        solution = herad(chain, Resources(big, little)).solution
        candidates.append((f"({big}B,{little}L)", solution))

    front = pareto_front(candidates, chain, model)
    print("Period/power Pareto front over core budgets "
          "(3:1 big:little active draw):")
    print(f"{'budget':>10} {'period (us)':>12} {'power':>7} {'busy':>6}")
    for label, report in front:
        print(f"{label:>10} {report.period:12.1f} {report.power:7.2f} "
              f"{report.busy_fraction * 100:5.1f}%")
    print()
    print("Budgets off the front are dominated: another budget is at least")
    print("as fast and draws no more power.")


if __name__ == "__main__":
    main()
