#!/usr/bin/env python3
"""Quickstart: schedule a partially-replicable task chain on big/little cores.

Builds a small chain (two stateless stages around a stateful synchronizer,
the typical SDR shape), schedules it with every strategy from the paper, and
prints the resulting pipeline decompositions, periods and core usage.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PAPER_ORDER, Resources, TaskChain, get_strategy
from repro.core.registry import get_info


def main() -> None:
    # A task chain is an ordered list of tasks with one weight (latency) per
    # core type.  Stateful tasks (replicable=False) cannot be replicated.
    chain = TaskChain.from_weights(
        weights_big=[40, 25, 90, 10, 120, 30],
        weights_little=[90, 60, 150, 25, 300, 80],
        replicable=[True, True, False, True, True, True],
        name="quickstart chain",
    )
    print(chain.describe())
    print()

    # The platform: 2 big (performance) + 3 little (efficiency) cores.
    resources = Resources(big=2, little=3)
    print(f"Platform budget: {resources}")
    print()

    for name in PAPER_ORDER:
        info = get_info(name)
        outcome = get_strategy(name)(chain, resources)
        usage = outcome.solution.core_usage()
        print(f"{info.display_name:<10}  period={outcome.period:8.2f}  "
              f"throughput={outcome.solution.throughput(chain):.5f}/unit  "
              f"cores={usage.big}B+{usage.little}L")
        print(f"{'':<10}  pipeline: {outcome.solution.render()}")
    print()

    # HeRAD is optimal in period and uses as many little cores as necessary;
    # inspect its schedule in detail.
    best = get_strategy("herad")(chain, resources)
    print(best.solution.describe(chain))


if __name__ == "__main__":
    main()
