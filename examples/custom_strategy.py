#!/usr/bin/env python3
"""Write your own scheduling strategy on top of the library's machinery.

The binary-search ``Schedule`` driver (Algo. 1) is strategy-agnostic: any
``ComputeSolution(profile, resources, period) -> Solution`` callable plugs
in.  This example implements **BIGFIRST**, the mirror image of FERTAC (big
cores first, little as fallback), and compares it against the paper's
strategies — showing why preferring little cores is the better default for
the power proxy, and how easily variants can be probed.

Run:  python examples/custom_strategy.py
"""

from __future__ import annotations

from repro import PAPER_ORDER, Resources, TaskChain, get_strategy
from repro.core.binary_search import schedule_by_binary_search
from repro.core.chain_stats import ChainProfile
from repro.core.packing import compute_stage, stage_fits
from repro.core.registry import get_info
from repro.core.solution import Solution
from repro.core.stage import Stage
from repro.core.types import CoreType


def bigfirst_compute_solution(
    profile: ChainProfile, resources: Resources, period: float
) -> Solution:
    """FERTAC with the core-type preference inverted."""
    last = profile.n - 1
    big, little = resources.big, resources.little
    stages: list[Stage] = []
    start = 0
    while True:
        plan = compute_stage(profile, start, big, CoreType.BIG, period)
        core_type = CoreType.BIG
        if not stage_fits(profile, start, plan, big, core_type, period):
            plan = compute_stage(profile, start, little, CoreType.LITTLE, period)
            core_type = CoreType.LITTLE
            if not stage_fits(profile, start, plan, little, core_type, period):
                return Solution.empty()
        stages.append(Stage(start, plan.end, plan.cores, core_type))
        if plan.end == last:
            return Solution(stages)
        if core_type is CoreType.BIG:
            big -= plan.cores
        else:
            little -= plan.cores
        start = plan.end + 1


def bigfirst(chain, resources):
    """Schedule with BIGFIRST (binary search + the builder above)."""
    return schedule_by_binary_search(
        chain, resources, bigfirst_compute_solution
    )


def main() -> None:
    chain = TaskChain.from_weights(
        weights_big=[60, 35, 110, 20, 45, 150, 25],
        weights_little=[130, 80, 260, 45, 110, 330, 60],
        replicable=[True, False, True, True, False, True, True],
        name="comparison chain",
    )
    resources = Resources(big=3, little=3)

    print(f"{'Strategy':<12} {'period':>8} {'big':>4} {'little':>7}  pipeline")
    print("-" * 76)
    for name in PAPER_ORDER:
        outcome = get_strategy(name)(chain, resources)
        usage = outcome.solution.core_usage()
        print(f"{get_info(name).display_name:<12} {outcome.period:8.1f} "
              f"{usage.big:>4} {usage.little:>7}  {outcome.solution.render()}")

    outcome = bigfirst(chain, resources)
    usage = outcome.solution.core_usage()
    print(f"{'BIGFIRST*':<12} {outcome.period:8.1f} "
          f"{usage.big:>4} {usage.little:>7}  {outcome.solution.render()}")
    print()
    print("* custom strategy defined in this file — note how it hoards big")
    print("  cores early, the exact behaviour FERTAC avoids by preferring")
    print("  efficient cores whenever they can hold the target period.")


if __name__ == "__main__":
    main()
