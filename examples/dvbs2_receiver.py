#!/usr/bin/env python3
"""Schedule and "run" the DVB-S2 receiver on both paper platforms.

This is the paper's headline use case: the 23-task DVB-S2 receiver chain
(latencies profiled in Table III) scheduled on the Mac Studio (16 P + 4 E
cores, interframe 4) and the X7 Ti (6 P + 8 E cores, interframe 8).  For
each configuration the script prints every strategy's pipeline
decomposition, the expected throughput, and the throughput measured on the
StreamPU-like discrete-event runtime with the calibrated overhead model —
a miniature Table II.

Run:  python examples/dvbs2_receiver.py
"""

from __future__ import annotations

from repro import PAPER_ORDER, get_strategy
from repro.core.registry import get_info
from repro.platform import REAL_CONFIGURATIONS
from repro.sdr import DVBS2_NORMAL_R8_9, dvbs2_chain, fps_from_period_us
from repro.streampu import CalibratedOverhead, PipelineSpec, simulate_pipeline


def main() -> None:
    overhead = CalibratedOverhead()
    for platform, resources in REAL_CONFIGURATIONS:
        chain = dvbs2_chain(platform)
        print(f"=== {platform.name}, R={resources} "
              f"(interframe {platform.interframe}) ===")
        for name in PAPER_ORDER:
            outcome = get_strategy(name)(chain, resources)
            spec = PipelineSpec.from_solution(outcome.solution, chain)
            sim = simulate_pipeline(spec, num_frames=1500, overhead=overhead)

            sim_fps = fps_from_period_us(outcome.period, platform.interframe)
            real_fps = sim.report.fps(interframe=platform.interframe)
            sim_mbps = sim_fps * DVBS2_NORMAL_R8_9.info_bits / 1e6
            real_mbps = real_fps * DVBS2_NORMAL_R8_9.info_bits / 1e6

            print(f"  {get_info(name).display_name:<10} "
                  f"period={outcome.period:8.1f} us  "
                  f"expected={sim_mbps:5.1f} Mb/s  "
                  f"measured={real_mbps:5.1f} Mb/s")
            print(f"  {'':<10} {outcome.solution.render()}")
        print()


if __name__ == "__main__":
    main()
