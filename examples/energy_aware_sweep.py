#!/usr/bin/env python3
"""Energy-aware scheduling: the little-core usage tradeoff.

The paper's secondary objective is a power proxy: *use as many little cores
as necessary* (and no more big cores than needed) to hit the minimal period.
This example sweeps platform budgets on a synthetic chain and shows:

1. how the optimal period improves as cores are added (throughput scaling);
2. how HeRAD shifts work onto little cores whenever that does not hurt the
   period — compared against FERTAC, which sometimes overspends cores;
3. a simple power estimate (relative units) assuming big cores cost 3x a
   little core, illustrating the big-for-little exchange.

Run:  python examples/energy_aware_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import CoreType, Resources, fertac, herad
from repro.workloads import random_chain
from repro.workloads.synthetic import GeneratorConfig

#: Relative power cost of one busy core (big cores burn ~3x a little core).
POWER_BIG, POWER_LITTLE = 3.0, 1.0


def power_estimate(big_used: int, little_used: int) -> float:
    """A toy power model: cost proportional to the cores kept busy."""
    return POWER_BIG * big_used + POWER_LITTLE * little_used


def main() -> None:
    rng = np.random.default_rng(2024)
    chain = random_chain(
        rng, GeneratorConfig(num_tasks=16, stateless_ratio=0.6)
    )
    print(f"Chain: 16 tasks, SR=0.6, "
          f"total w^B={chain.total_weight(CoreType.BIG):.0f}")
    print()
    header = (f"{'R=(b,l)':>10} | {'P(HeRAD)':>9} {'cores':>7} {'power':>6} | "
              f"{'P(FERTAC)':>9} {'cores':>7} {'power':>6}")
    print(header)
    print("-" * len(header))

    for big, little in [(1, 1), (2, 2), (2, 6), (4, 4), (6, 2), (8, 8)]:
        resources = Resources(big, little)
        h = herad(chain, resources)
        f = fertac(chain, resources)
        hu, fu = h.solution.core_usage(), f.solution.core_usage()
        print(
            f"{str(resources):>10} | "
            f"{h.period:9.2f} {f'{hu.big}B+{hu.little}L':>7} "
            f"{power_estimate(hu.big, hu.little):6.1f} | "
            f"{f.period:9.2f} {f'{fu.big}B+{fu.little}L':>7} "
            f"{power_estimate(fu.big, fu.little):6.1f}"
        )

    print()
    print("HeRAD hits the minimal period with the cheapest big/little mix;")
    print("FERTAC is near-optimal in period but tends to spend extra cores")
    print("(the paper's Fig. 2 quantifies this at scale).")


if __name__ == "__main__":
    main()
