#!/usr/bin/env python3
"""Execute a schedule for real on the threaded streaming runtime.

The discrete-event simulator predicts throughput; this example actually
*runs* a pipeline: each stage becomes a group of replica worker threads
connected by in-order bounded channels (StreamPU's adaptor semantics), and
frames carry real payloads through user-defined processing functions.

The pipeline here is a toy DSP chain on NumPy vectors:

    source noise -> FIR filter (stateful) -> gain -> demodulate -> checksum

Run:  python examples/streaming_runtime.py
"""

from __future__ import annotations

import numpy as np

from repro import Resources, TaskChain, herad
from repro.streampu import CallableTask, PipelineRuntime

FRAME_SIZE = 4096


def make_dsp_tasks() -> "tuple[TaskChain, list[CallableTask]]":
    """A toy baseband chain: weights reflect each task's relative cost."""
    rng = np.random.default_rng(7)
    fir_taps = rng.standard_normal(32)
    fir_state = {"tail": np.zeros(31)}

    def fir(x: np.ndarray) -> np.ndarray:
        # Stateful across frames (overlap-save tail) -> not replicable.
        padded = np.concatenate([fir_state["tail"], x])
        fir_state["tail"] = x[-31:].copy()
        return np.convolve(padded, fir_taps, mode="valid")

    def gain(x: np.ndarray) -> np.ndarray:
        return x * (1.0 / (np.abs(x).max() + 1e-12))

    def demodulate(x: np.ndarray) -> np.ndarray:
        return (x > 0).astype(np.int8)

    def checksum(bits: np.ndarray) -> int:
        return int(bits.sum())

    chain = TaskChain.from_weights(
        weights_big=[30, 10, 40, 5],
        weights_little=[70, 25, 95, 12],
        replicable=[False, True, True, True],
        name="toy DSP chain",
    )
    tasks = [
        CallableTask(30, fir, name="fir"),
        CallableTask(10, gain, name="gain"),
        CallableTask(40, demodulate, name="demod"),
        CallableTask(5, checksum, name="crc"),
    ]
    return chain, tasks


def main() -> None:
    chain, tasks = make_dsp_tasks()
    resources = Resources(big=2, little=2)
    outcome = herad(chain, resources)
    print("Schedule:", outcome.solution.render(),
          f"(expected period {outcome.period:.1f} weight units)")

    runtime = PipelineRuntime.from_solution(
        outcome.solution, chain, executors=tasks
    )
    print(runtime.spec.describe())
    print()

    rng = np.random.default_rng(0)
    result = runtime.run(
        num_frames=64,
        payload_factory=lambda i: rng.standard_normal(FRAME_SIZE),
    )
    checksums = result.payloads
    print(f"Streamed {len(checksums)} frames through "
          f"{runtime.spec.num_stages} stages / "
          f"{runtime.spec.total_cores} workers")
    print(f"First checksums: {checksums[:8]}")
    print(f"Wall-clock makespan: {result.completion_times[-1] * 1e3:.1f} ms")
    print(f"Measured period:  {result.report.measured_period:.1f} weight units "
          f"(analytic {result.report.analytic_period:.1f})")


if __name__ == "__main__":
    main()
