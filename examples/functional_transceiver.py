#!/usr/bin/env python3
"""Run a *functional* DVB-S2-like receiver under a computed schedule.

The other examples schedule latency models; this one closes the loop: the
receiver tasks are the library's real signal-processing blocks (RRC matched
filter, frame sync, phase tracking, QPSK soft demodulation, LDPC min-sum,
BCH Berlekamp-Massey, descramblers, BER monitor), the transmitter+channel
loopback feeds them noisy waveforms, and the pipeline executes on the
threaded StreamPU-like runtime with the stage decomposition chosen by
HeRAD.

Every frame is checked bit-exactly: at the default operating point (9 dB,
the "error-free SNR zone" like the paper's evaluation) all frames decode
with zero errors.

Run:  python examples/functional_transceiver.py
"""

from __future__ import annotations

from repro import Resources, herad
from repro.sdr import FunctionalTransceiver, TransceiverConfig
from repro.sdr.transceiver import FramePayload
from repro.streampu import PipelineRuntime

NUM_FRAMES = 24


def main() -> None:
    trx = FunctionalTransceiver(TransceiverConfig(snr_db=9.0))
    print(f"Link: BCH({trx.bch.n},{trx.bch.k},t={trx.bch.t}) x{trx.bch_blocks} "
          f"-> LDPC({trx.ldpc.n},{trx.ldpc.k}) -> QPSK, "
          f"{trx.frame_bits} info bits/frame, SNR {trx.config.snr_db} dB")

    # Schedule the functional receiver chain (Table III weights) on half a
    # Mac Studio; the stages then execute the real DSP callables.
    chain = trx.receiver_chain()
    outcome = herad(chain, Resources(8, 2))
    print(f"HeRAD schedule: {outcome.solution.render()} "
          f"(expected period {outcome.period:.1f} us on real hardware)")

    runtime = PipelineRuntime.from_solution(
        outcome.solution, chain, executors=trx.receiver_tasks()
    )
    result = runtime.run(
        num_frames=NUM_FRAMES,
        payload_factory=lambda i: FramePayload(index=i),
    )

    total_errors = 0
    for payload in result.payloads:
        assert isinstance(payload, FramePayload)
        total_errors += payload.bit_errors
    iterations = [p.ldpc_iterations for p in result.payloads]
    corrections = sum(p.bch_corrections for p in result.payloads)

    print(f"Streamed {NUM_FRAMES} frames "
          f"({NUM_FRAMES * trx.frame_bits} info bits) through "
          f"{runtime.spec.num_stages} stages / {runtime.spec.total_cores} workers")
    print(f"Bit errors: {total_errors}   "
          f"LDPC iterations avg: {sum(iterations) / len(iterations):.1f}   "
          f"BCH corrections: {corrections}")
    print(f"Wall-clock: {result.completion_times[-1] * 1e3:.0f} ms "
          f"({NUM_FRAMES / result.completion_times[-1]:.1f} frames/s of real DSP)")
    if total_errors == 0:
        print("All frames decoded error-free under the HeRAD schedule.")


if __name__ == "__main__":
    main()
