#!/usr/bin/env python3
"""Static pipeline schedules vs dynamic runtime scheduling.

The paper argues (Section II) that dynamic schedulers — GNU Radio's
thread-per-block model, CEDR-style runtime dispatch — are inefficient at
SDR task granularities, motivating its *static* pipeline decompositions.
This example makes the comparison concrete on the DVB-S2 receiver:

* the static side: HeRAD's optimal pipeline, executed on the discrete-event
  runtime;
* the dynamic side: an event-driven per-task dispatcher (earliest-finish
  core choice, streaming FIFO priority) with a sweep over the per-dispatch
  overhead.

Watch the crossover: a dynamic scheduler with *free* dispatch beats any
interval mapping (it is strictly more flexible), but tens of microseconds
of dispatch cost per task — realistic for generic runtimes at this
granularity — already hand the win to the static schedule.

Run:  python examples/static_vs_dynamic.py
"""

from __future__ import annotations

from repro import Resources, herad
from repro.sdr import dvbs2_mac_studio_chain, fps_from_period_us
from repro.streampu import simulate_dynamic_scheduler

OVERHEADS_US = (0.0, 10.0, 20.0, 50.0, 100.0, 250.0, 500.0)


def main() -> None:
    chain = dvbs2_mac_studio_chain()
    resources = Resources(8, 2)

    static = herad(chain, resources)
    static_fps = fps_from_period_us(static.period, interframe=4)
    print(f"Static (HeRAD): {static.solution.render()}")
    print(f"  period {static.period:,.1f} us -> {static_fps:,.0f} FPS")
    print()

    print(f"{'dispatch overhead':>18} {'dynamic period':>15} "
          f"{'FPS':>8}  winner")
    print("-" * 56)
    for overhead in OVERHEADS_US:
        result = simulate_dynamic_scheduler(
            chain, resources, num_frames=300, dispatch_overhead=overhead
        )
        fps = fps_from_period_us(result.measured_period, interframe=4)
        winner = "dynamic" if result.measured_period < static.period else "STATIC"
        print(f"{overhead:>15.0f} us {result.measured_period:>12,.1f} us "
              f"{fps:>8,.0f}  {winner}")
    print()
    print("With zero-cost dispatch the dynamic scheduler edges out the")
    print("static pipeline (it can use any idle core for any task), but a")
    print("few tens of microseconds per dispatch — locking, queue work,")
    print("cache disturbance — flip the result. This is why the paper's")
    print("strategies compute static decompositions ahead of time.")


if __name__ == "__main__":
    main()
