#!/usr/bin/env python
"""Fault-injection smoke: crash a worker mid-campaign, demand bitwise parity.

Runs a Table I-style campaign twice:

1. a fault-free serial baseline;
2. a process-tier run (``--jobs`` workers) with resilience enabled and a
   deterministic fault plan that hard-kills (``os._exit``) a worker process
   the first time it touches a chosen chain — the closest reproducible
   stand-in for an OOM-killed or segfaulted worker.

The recovered arrays must be **bitwise identical** to the baseline and
nothing may be quarantined; any mismatch exits non-zero (CI ``fault-smoke``
job). This is the end-to-end proof that crash recovery cannot change
reproduced numbers.

A third phase drives the online simulator through a core-failure storm
(three overlapping failures on a populated platform, certification on) and
asserts the availability invariant: every event leaves every chain either
feasibly scheduled or explicitly shed (zero scheduleless intervals), no
allocation ever exceeds the cores that are up (zero overcommit), and the
platform is fully recovered by the end of the trace.

Usage::

    PYTHONPATH=src python scripts/fault_smoke.py [--chains 40] [--jobs 4]
"""

from __future__ import annotations

import argparse
import sys
import tempfile

import numpy as np

from repro.core.chain_stats import ChainProfile
from repro.core.registry import PAPER_ORDER
from repro.core.types import Resources
from repro.engine import (
    CampaignEngine,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
)
from repro.sim import SimConfig, failure_storm_trace, simulate
from repro.workloads.synthetic import GeneratorConfig, chain_batch


def storm_failures(seed: int) -> int:
    """Run the certified failure-storm simulation; returns failed checks."""
    trace = failure_storm_trace(seed=seed)
    result = simulate(trace, SimConfig(certify=True))
    overlap = max(
        sum(
            1
            for other in result.down_intervals
            if other.start <= interval.start < other.end
        )
        for interval in result.down_intervals
    )
    actions = {
        action: int(result.counter(f"sim.resched.{action}"))
        for action in ("keep", "warm", "full", "reuse", "shed")
    }
    print(
        f"[storm] {result.num_events} events, peak {overlap} cores down, "
        f"ladder {actions}"
    )
    failures = 0
    if overlap < 3:
        print(f"FAIL: storm peaked at {overlap} overlapping failures, need >= 3")
        failures += 1
    if result.scheduleless_intervals:
        print(
            f"FAIL: {result.scheduleless_intervals} scheduleless interval(s) "
            "— a chain was neither scheduled nor explicitly shed"
        )
        failures += 1
    if result.overcommit_events:
        print(
            f"FAIL: {result.overcommit_events} overcommit event(s) "
            "— allocations exceeded the cores currently up"
        )
        failures += 1
    if result.records[-1].availability != 1.0:
        print("FAIL: the platform did not fully recover by the end of the storm")
        failures += 1
    for action in ("warm", "full", "shed"):
        if actions[action] < 1:
            print(f"FAIL: ladder rung {action!r} was never exercised")
            failures += 1
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chains", type=int, default=40)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    config = GeneratorConfig(num_tasks=12, stateless_ratio=0.5)
    chains = list(chain_batch(args.chains, config, seed=args.seed))
    resources = Resources(4, 4)
    strategies = tuple(PAPER_ORDER)

    print(f"[baseline] serial, {args.chains} chains, {len(strategies)} strategies")
    baseline = CampaignEngine(jobs=1, backend="serial", memo=False).solve_instances(
        chains, resources, strategies
    )

    with tempfile.TemporaryDirectory(prefix="fault-smoke-") as state_dir:
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="crash",
                    fingerprint=ChainProfile(chains[args.chains // 2]).fingerprint,
                    tiers=("process",),
                    times=1,
                ),
            ),
            state_dir=state_dir,
        )
        print(f"[faulted] process tier, jobs={args.jobs}, one worker crash armed")
        engine = CampaignEngine(
            jobs=args.jobs,
            backend="process",
            memo=False,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)
            ),
            faults=plan,
        )
        recovered = engine.solve_instances(chains, resources, strategies)

    report = engine.last_report
    assert report is not None
    print(
        f"[recovery] retries={report.retries} timeouts={report.timeouts} "
        f"degradations={report.degradations} quarantined={report.quarantined}"
    )
    failures = 0
    if report.retries < 1:
        print("FAIL: the injected crash never fired (no retry recorded)")
        failures += 1
    if report.quarantined:
        print("FAIL: crash recovery quarantined instances instead of recovering")
        failures += 1
    for name in strategies:
        for column in ("periods", "big_used", "little_used"):
            a = getattr(baseline[name], column)
            b = getattr(recovered[name], column)
            if not np.array_equal(a, b):
                print(f"FAIL: {name}.{column} differs from fault-free baseline")
                failures += 1
    failures += storm_failures(args.seed)
    if failures:
        print(f"fault smoke FAILED ({failures} check(s))")
        return 1
    print(
        "fault smoke OK: recovered arrays are bitwise identical and the "
        "storm held the availability invariant"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
