#!/usr/bin/env python
"""Engine performance trajectory: serial vs parallel vs memoized replay.

Runs the Table I campaign scenario (default 200 chains x 5 strategies,
budget ``(10B, 10L)``) through the three engine execution tiers and writes
``BENCH_engine.json`` with wall times, per-strategy solve latencies, and a
bitwise engine-vs-serial parity verdict (non-zero exit on mismatch, so CI
can gate on it).

Usage::

    PYTHONPATH=src python scripts/bench_trajectory.py [--chains 200]
        [--jobs 8] [--out BENCH_engine.json]

Notes on reading the numbers: the parallel speedup is bounded by the cores
the process may actually use — reported as both ``cpu_count`` (machine
total) and ``cpu_affinity`` (scheduler mask; smaller under container CPU
limits) — while the memoized-replay and batch-kernel tiers are
hardware-independent.
"""

from __future__ import annotations

import argparse
import datetime
import functools
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.chain_stats import ChainProfile  # noqa: E402
from repro.core.registry import PAPER_ORDER  # noqa: E402
from repro.core.types import Resources  # noqa: E402
from repro.engine import CampaignEngine  # noqa: E402
from repro.obs import ObsConfig  # noqa: E402
from repro.obs.sketch import DEFAULT_ALPHA, SKETCH_VERSION  # noqa: E402
from repro.sim import SimConfig, bursty_trace, simulate  # noqa: E402
from repro.workloads.synthetic import (  # noqa: E402
    GeneratorConfig,
    chain_batch,
    ktype_chain_batch,
)

TABLE1_BUDGET = Resources(10, 10)
TABLE1_BUDGETS = (Resources(16, 4), Resources(10, 10), Resources(4, 16))
#: The k-type overhead scenario: a 3-class budget and the strategies that
#: accept it (tracks what the k-type generalization costs on the hot path).
KTYPE_BUDGET = Resources.from_counts((4, 4, 2))
KTYPE_STRATEGIES = ("fertac", "2catac", "otac_b", "otac_l")
#: Strategies with a batch kernel, timed python-vs-batch on the campaign.
KERNEL_STRATEGIES = ("herad", "2catac")


def _cpu_affinity() -> "int | None":
    """Cores the scheduler lets this process use (``None`` if unknowable)."""
    getter = getattr(os, "sched_getaffinity", None)
    return len(getter(0)) if getter is not None else None


def _time(fn, repeats: int = 1) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _git_sha() -> str:
    """Current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def _arrays_match(a, b) -> bool:
    return set(a) == set(b) and all(
        np.array_equal(a[n].periods, b[n].periods)
        and np.array_equal(a[n].big_used, b[n].big_used)
        and np.array_equal(a[n].little_used, b[n].little_used)
        for n in a
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chains", type=int, default=200)
    parser.add_argument("--tasks", type=int, default=20)
    parser.add_argument("--stateless-ratio", type=float, default=0.5)
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel tier worker count (default: all cores)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--latency-chains", type=int, default=20,
                        help="chains averaged per strategy latency point")
    parser.add_argument("--sim-events", type=int, default=2000,
                        help="events in the online-simulation scenario")
    parser.add_argument("--scaling-jobs", type=str, default="2,4,8",
                        help="comma-separated job counts of the jobs_scaling "
                        "scenario (empty string disables it)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_engine.json")
    args = parser.parse_args(argv)

    jobs = args.jobs or os.cpu_count() or 1
    config = GeneratorConfig(
        num_tasks=args.tasks, stateless_ratio=args.stateless_ratio
    )
    chains = list(chain_batch(args.chains, config, seed=args.seed))
    print(
        f"campaign: {len(chains)} chains x {len(PAPER_ORDER)} strategies, "
        f"budget ({TABLE1_BUDGET.big}B,{TABLE1_BUDGET.little}L), "
        f"jobs={jobs}, cpu_count={os.cpu_count()}, "
        f"cpu_affinity={_cpu_affinity()}"
    )

    # Tier 1: serial, no cache (the pre-engine baseline path).
    serial_engine = CampaignEngine(jobs=1, backend="serial", memo=False)
    serial_s, serial_arrays = _time(
        lambda: serial_engine.solve_instances(chains, TABLE1_BUDGET, PAPER_ORDER)
    )
    print(f"  serial          {serial_s:8.2f}s")

    # Tier 2: process pool, no cache.
    pool_engine = CampaignEngine(jobs=jobs, backend="process", memo=False)
    parallel_s, parallel_arrays = _time(
        lambda: pool_engine.solve_instances(
            chains, TABLE1_BUDGET, PAPER_ORDER, jobs=jobs
        )
    )
    print(f"  process (j={jobs:2d})  {parallel_s:8.2f}s")

    # Tier 3: memoized replay (warm cache — the figure drivers' case).
    memo_engine = CampaignEngine(jobs=1, memo=True)
    memo_engine.solve_instances(chains, TABLE1_BUDGET, PAPER_ORDER)
    replay_s, replay_arrays = _time(
        lambda: memo_engine.solve_instances(chains, TABLE1_BUDGET, PAPER_ORDER),
        repeats=3,
    )
    print(f"  memo replay     {replay_s:8.2f}s")

    mismatch = not (
        _arrays_match(serial_arrays, parallel_arrays)
        and _arrays_match(serial_arrays, replay_arrays)
    )

    # Per-strategy single-instance solve latency (microseconds).
    latency_profiles = [
        ChainProfile(c)
        for c in chain_batch(args.latency_chains, config, seed=args.seed + 1)
    ]
    latencies_us = {}
    for budget in TABLE1_BUDGETS:
        key = f"({budget.big}B,{budget.little}L)"
        latencies_us[key] = {
            name: round(
                serial_engine.measure_latency(name, latency_profiles, budget)
                * 1e6,
                1,
            )
            for name in PAPER_ORDER
        }

    # k-type solve scenario: per-strategy latency on a 3-class budget, so
    # the engine trajectory also tracks the k-type generalization overhead.
    ktype_config = GeneratorConfig(num_tasks=12, stateless_ratio=0.5)
    ktype_profiles = [
        ChainProfile(c)
        for c in ktype_chain_batch(
            args.latency_chains, ktype_config, ktype=3, seed=args.seed + 2
        )
    ]
    ktype_key = "(" + ",".join(str(c) for c in KTYPE_BUDGET.counts) + ")"
    ktype_latencies_us = {
        name: round(
            serial_engine.measure_latency(name, ktype_profiles, KTYPE_BUDGET)
            * 1e6,
            1,
        )
        for name in KTYPE_STRATEGIES
    }
    print(f"  k-type latency  budget {ktype_key}: {ktype_latencies_us}")

    # Kernel scenario: the same campaign through the scalar python solvers
    # vs the batch-vectorized kernel tier, per batchable strategy.  Results
    # must stay bitwise identical — the speedup is the entire point.
    kernel_wall_s: dict[str, dict[str, float]] = {}
    kernel_speedup: dict[str, float] = {}
    kernel_latency_us: dict[str, dict[str, float]] = {}
    kernel_mismatch = False
    batch_engine = CampaignEngine(
        jobs=1, backend="serial", memo=False, kernel="batch"
    )
    # Untimed metrics-enabled pass: per-solve latency quantiles from the obs
    # sketches (kept separate so obs overhead never touches the timed walls).
    quantile_engine = CampaignEngine(
        jobs=1, backend="serial", memo=False, obs=ObsConfig(metrics=True)
    )
    for name in KERNEL_STRATEGIES:
        python_s, python_arrays = _time(
            functools.partial(
                serial_engine.solve_instances, chains, TABLE1_BUDGET, (name,)
            ),
            repeats=2,
        )
        batch_s, batch_arrays = _time(
            functools.partial(
                batch_engine.solve_instances, chains, TABLE1_BUDGET, (name,)
            ),
            repeats=3,
        )
        kernel_wall_s[name] = {
            "python": round(python_s, 3),
            "batch": round(batch_s, 3),
        }
        kernel_speedup[name] = round(python_s / batch_s, 2)
        kernel_mismatch |= not _arrays_match(python_arrays, batch_arrays)
        quantile_engine.solve_instances(chains, TABLE1_BUDGET, (name,))
        sketch = quantile_engine.obs.metrics.sketch(f"solve.seconds.{name}")
        kernel_latency_us[name] = {
            "p50": round(sketch.p50 * 1e6, 1),
            "p90": round(sketch.p90 * 1e6, 1),
            "p99": round(sketch.p99 * 1e6, 1),
        }
        print(
            f"  kernel {name:12s} python {python_s:6.2f}s  "
            f"batch {batch_s:6.2f}s  x{python_s / batch_s:.2f}  "
            f"(scalar p50 {kernel_latency_us[name]['p50']:.0f}us "
            f"p99 {kernel_latency_us[name]['p99']:.0f}us)"
        )
    mismatch |= kernel_mismatch

    # Jobs-scaling scenario: the shared-memory process tier (zero-pickle
    # result planes + cost-adaptive chunking) vs serial, at several worker
    # counts and on both kernels.  Speedups are same-run ratios; the gate
    # only judges them when the candidate machine actually has the cores
    # (tolerances carry ``requires_cores``), so a pinned single-core CI
    # runner skips them explicitly instead of passing vacuously.
    scaling_levels = [
        int(level)
        for level in args.scaling_jobs.split(",")
        if level.strip()
    ]
    jobs_scaling: "dict[str, object]" = {}
    scaling_mismatch = False
    if scaling_levels:
        jobs_scaling["jobs"] = scaling_levels
        batch_serial_s, batch_serial_arrays = _time(
            lambda: CampaignEngine(
                jobs=1, backend="serial", memo=False, kernel="batch"
            ).solve_instances(chains, TABLE1_BUDGET, PAPER_ORDER)
        )
        scaling_mismatch |= not _arrays_match(serial_arrays, batch_serial_arrays)
        serial_walls = {"python": serial_s, "batch": batch_serial_s}
        for kernel in ("python", "batch"):
            tier: "dict[str, object]" = {
                "serial_wall_s": round(serial_walls[kernel], 3)
            }
            for level in scaling_levels:
                engine = CampaignEngine(
                    jobs=level, backend="process", memo=False, kernel=kernel
                )
                wall_s, arrays = _time(
                    functools.partial(
                        engine.solve_instances,
                        chains, TABLE1_BUDGET, PAPER_ORDER,
                    )
                )
                scaling_mismatch |= not _arrays_match(serial_arrays, arrays)
                tier[f"jobs{level}"] = {
                    "wall_s": round(wall_s, 3),
                    "speedup": round(serial_walls[kernel] / wall_s, 2),
                }
                print(
                    f"  scaling {kernel:6s} j={level:2d} {wall_s:8.2f}s  "
                    f"x{serial_walls[kernel] / wall_s:.2f}"
                )
            jobs_scaling[kernel] = tier
        jobs_scaling["mismatch"] = scaling_mismatch
        mismatch |= scaling_mismatch

    # Online-simulation scenario: steady-state throughput and rescheduling
    # latency percentiles of the incremental scheduler on a bursty trace
    # (repro.sim).  Records and counters must be run-to-run identical; the
    # wall-clock latencies are what this scenario is here to track.
    sim_trace = bursty_trace(args.sim_events, seed=args.seed)
    sim_s, sim_result = _time(
        functools.partial(simulate, sim_trace, SimConfig())
    )
    sim_repeat = simulate(sim_trace, SimConfig())
    sim_mismatch = (
        sim_result.records != sim_repeat.records
        or sim_result.metrics.counters != sim_repeat.metrics.counters
        or sim_result.scheduleless_intervals > 0
        or sim_result.overcommit_events > 0
    )
    # Percentiles come from the same obs-layer sketch the CLI reports, so
    # this file and `repro simulate --metrics` can never disagree.
    resched_sketch = sim_result.resched_sketch()
    sim_p50_ms = resched_sketch.p50 * 1e3
    sim_p90_ms = resched_sketch.p90 * 1e3
    sim_p99_ms = resched_sketch.p99 * 1e3
    mismatch |= sim_mismatch
    print(
        f"  sim ({sim_result.num_events} events) {sim_s:6.2f}s  "
        f"resched p50 {sim_p50_ms:.2f}ms  p99 {sim_p99_ms:.2f}ms  "
        f"throughput {sim_result.aggregate_throughput():.4g}"
    )

    report = {
        "benchmark": "campaign engine trajectory",
        # Bucketing parameters of every percentile in this file, for
        # forward compatibility when comparing reports across versions.
        "sketch": {"alpha": DEFAULT_ALPHA, "version": SKETCH_VERSION},
        "scenario": {
            "chains": len(chains),
            "num_tasks": args.tasks,
            "stateless_ratio": args.stateless_ratio,
            "strategies": list(PAPER_ORDER),
            "budget": [TABLE1_BUDGET.big, TABLE1_BUDGET.little],
            "seed": args.seed,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "cpu_affinity": _cpu_affinity(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "git_sha": _git_sha(),
        },
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "campaign_wall_s": {
            "serial": round(serial_s, 3),
            f"process_jobs{jobs}": round(parallel_s, 3),
            "memo_replay": round(replay_s, 3),
        },
        "speedup_vs_serial": {
            f"process_jobs{jobs}": round(serial_s / parallel_s, 2),
            "memo_replay": round(serial_s / replay_s, 2),
        },
        "memo": {
            "hit_rate": round(memo_engine.memo.stats.hit_rate, 4),
            "entries": memo_engine.memo.stats.size,
        },
        "strategy_latency_us": latencies_us,
        "ktype_scenario": {
            "budget": list(KTYPE_BUDGET.counts),
            "num_tasks": 12,
            "chains": args.latency_chains,
            "strategy_latency_us": ktype_latencies_us,
        },
        "kernel_vs_python": {
            "chains": len(chains),
            "num_tasks": args.tasks,
            "budget": [TABLE1_BUDGET.big, TABLE1_BUDGET.little],
            "wall_s": kernel_wall_s,
            "speedup": kernel_speedup,
            "solve_latency_us": kernel_latency_us,
            "mismatch": kernel_mismatch,
        },
        "jobs_scaling": jobs_scaling,
        "sim_scenario": {
            "kind": "bursty",
            "events": sim_result.num_events,
            "seed": args.seed,
            "wall_s": round(sim_s, 3),
            "events_per_s": round(sim_result.num_events / sim_s, 1),
            "steady_state_throughput": round(
                sim_result.aggregate_throughput(), 6
            ),
            "resched_latency_ms": {
                "p50": round(sim_p50_ms, 3),
                "p90": round(sim_p90_ms, 3),
                "p99": round(sim_p99_ms, 3),
                "max": round(resched_sketch.maximum * 1e3, 3),
            },
            "ladder": {
                action: int(sim_result.counter(f"sim.resched.{action}"))
                for action in ("keep", "warm", "full", "reuse", "shed")
            },
            "mismatch": sim_mismatch,
        },
        "engine_vs_serial_mismatch": mismatch,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if mismatch:
        print("ERROR: engine-vs-serial mismatch", file=sys.stderr)
        return 1
    print(
        f"speedups vs serial: process x{serial_s / parallel_s:.2f}, "
        f"memo replay x{serial_s / replay_s:.2f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
