#!/usr/bin/env python
"""Batch-kernel smoke: oracle replay through ``--kernel batch`` + bench.

Two gates, both exiting non-zero on violation (CI ``kernel-smoke`` job):

1. **Oracle replay** — every cell of the 1260-cell pre-refactor fixture
   (``tests/data/k2_oracle.json``: 30 chains x 6 budgets x 7 strategies)
   is solved through the batch kernel tier (an engine with
   ``kernel="batch"``, i.e. exactly what ``--kernel batch`` runs) with
   certification on, and compared bitwise — period bits and per-type core
   usage — against the stored pre-refactor outputs.
2. **Bench smoke** — the standard campaign scenario is timed on both
   kernels per batchable strategy; the batch path must not be slower than
   python (it is ~5-19x faster at full scale, so equality means a
   regression).

Usage::

    PYTHONPATH=src python scripts/kernel_smoke.py [--chains 60]
        [--num-tasks 20] [--jobs 1]
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.types import Resources  # noqa: E402
from repro.engine import CampaignEngine  # noqa: E402
from repro.workloads import generators as g  # noqa: E402
from repro.workloads.synthetic import GeneratorConfig, chain_batch  # noqa: E402

FIXTURE = REPO_ROOT / "tests" / "data" / "k2_oracle.json"
#: Strategies with a batch kernel (the bench-smoke subjects).
KERNEL_STRATEGIES = ("herad", "2catac")


def _oracle_chains():
    """The fixture's chain population (same recipe as tests/core)."""
    chains = []
    for sr in (0.2, 0.5, 0.8):
        cfg = GeneratorConfig(num_tasks=20, stateless_ratio=sr)
        chains.extend(chain_batch(8, cfg, seed=int(sr * 10)))
    chains += [
        g.fully_replicable_chain(12),
        g.fully_sequential_chain(12),
        g.alternating_chain(15),
        g.heavy_tail_chain(10),
        g.inverted_speed_chain(14),
        g.uniform_chain(1),
    ]
    return chains


def _replay_oracle(jobs: int) -> int:
    """Replay every fixture cell through the batch tier; count mismatches."""
    oracle = json.loads(FIXTURE.read_text())
    chains = _oracle_chains()
    strategies = sorted({row["strategy"] for row in oracle["rows"]})
    cells = {
        (row["chain"], tuple(row["budget"]), row["strategy"]): row
        for row in oracle["rows"]
    }
    engine = CampaignEngine(
        jobs=jobs,
        backend="serial" if jobs == 1 else "process",
        memo=False,
        kernel="batch",
    )
    mismatches = 0
    for budget in oracle["meta"]["budgets"]:
        resources = Resources(*budget)
        arrays = engine.solve_instances(
            chains, resources, strategies, certify=True
        )
        for name in strategies:
            record = arrays[name]
            for index in range(len(chains)):
                row = cells[index, tuple(budget), name]
                got = (
                    float(record.periods[index]).hex(),
                    [int(record.big_used[index]), int(record.little_used[index])],
                )
                want = (row["period_hex"], row["usage"])
                if got != want:
                    mismatches += 1
                    if mismatches <= 3:
                        print(
                            f"FAIL cell (chain {index}, {budget}, {name}): "
                            f"want {want}, got {got}"
                        )
    total = len(cells)
    print(
        f"[kernel-smoke] oracle replay: {total - mismatches}/{total} cells "
        f"bitwise-identical through --kernel batch (certified)"
    )
    return mismatches


def _bench(chains, resources, jobs: int) -> bool:
    """Time both kernels per strategy; True when batch is never slower."""
    ok = True
    python_engine = CampaignEngine(
        jobs=jobs, backend="serial" if jobs == 1 else "process", memo=False
    )
    batch_engine = CampaignEngine(
        jobs=jobs,
        backend="serial" if jobs == 1 else "process",
        memo=False,
        kernel="batch",
    )
    for name in KERNEL_STRATEGIES:
        timings = {}
        results = {}
        for label, engine in (("python", python_engine), ("batch", batch_engine)):
            solve = functools.partial(
                engine.solve_instances, chains, resources, (name,)
            )
            solve()  # warm-up: imports, allocator, worker spin-up
            start = time.perf_counter()
            results[label] = solve()
            timings[label] = time.perf_counter() - start
        slower = timings["batch"] > timings["python"]
        parity = np.array_equal(
            results["python"][name].periods, results["batch"][name].periods
        )
        verdict = "OK" if not slower and parity else "FAIL"
        print(
            f"[kernel-smoke] bench {name:12s} python {timings['python']:6.3f}s  "
            f"batch {timings['batch']:6.3f}s  "
            f"x{timings['python'] / timings['batch']:.2f}  {verdict}"
        )
        if slower:
            print(f"FAIL {name}: batch kernel slower than python")
            ok = False
        if not parity:
            print(f"FAIL {name}: batch kernel diverged from python")
            ok = False
    return ok


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chains", type=int, default=60,
                        help="bench-smoke campaign size")
    parser.add_argument("--num-tasks", type=int, default=20)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    mismatches = _replay_oracle(args.jobs)

    config = GeneratorConfig(num_tasks=args.num_tasks, stateless_ratio=0.5)
    chains = list(chain_batch(args.chains, config, seed=args.seed))
    bench_ok = _bench(chains, Resources(10, 10), args.jobs)

    if mismatches or not bench_ok:
        print(f"[kernel-smoke] FAILED ({mismatches} oracle mismatches)")
        return 1
    print("[kernel-smoke] OK: oracle bitwise, certified, batch not slower")
    return 0


if __name__ == "__main__":
    sys.exit(main())
