#!/usr/bin/env python
"""k-type differential smoke: reference solver vs heuristics on k=3.

Schedules a batch of synthetic 3-type chains on a small 3-class platform
and checks, per instance:

1. the exhaustive reference solver's solution passes the independent
   certificate checker (validity + per-class budget accounting);
2. every k-type heuristic (FERTAC, 2CATAC, OTAC variants) certifies too;
3. no heuristic beats the reference period by more than the binary-search
   tolerance (the reference is eps-optimal, so a "better" heuristic means
   one of the two solvers is wrong);
4. the same chains truncated to their first two weight columns reproduce
   the k=2 pipeline: the reference agrees with HeRAD within tolerance.

Any violation exits non-zero (CI ``ktype-smoke`` job).

Usage::

    PYTHONPATH=src python scripts/ktype_smoke.py [--chains 12] [--num-tasks 7]
"""

from __future__ import annotations

import argparse
import sys

from repro.core.bounds import search_epsilon
from repro.core.certify import certify_outcome
from repro.core.chain_stats import ChainProfile
from repro.core.errors import SchedulingError
from repro.core.herad import herad
from repro.core.reference import ktype_reference
from repro.core.registry import get_info
from repro.core.task import TaskChain
from repro.core.types import Resources
from repro.workloads.synthetic import GeneratorConfig, ktype_chain_batch

#: k-type heuristics differentially tested against the reference solver.
HEURISTICS = ("fertac", "2catac", "otac_b", "otac_l")


def _two_type_projection(chain: TaskChain) -> TaskChain:
    """The same chain restricted to its big/little weight columns."""
    return TaskChain.from_weight_matrix(
        [
            [task.weight(0) for task in chain.tasks],
            [task.weight(1) for task in chain.tasks],
        ],
        [task.replicable for task in chain.tasks],
        name=f"{chain.name}-k2",
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chains", type=int, default=12)
    parser.add_argument("--num-tasks", type=int, default=7)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    budget = Resources.from_counts((3, 3, 2))
    k2_budget = Resources(3, 3)
    eps = search_epsilon(budget)
    config = GeneratorConfig(num_tasks=args.num_tasks, stateless_ratio=0.5)
    chains = list(
        ktype_chain_batch(args.chains, config, ktype=3, seed=args.seed)
    )
    print(
        f"[ktype-smoke] {len(chains)} chains x ({len(HEURISTICS)} heuristics "
        f"+ reference) on {budget}"
    )

    failures = 0
    for chain in chains:
        profile = ChainProfile(chain)
        try:
            reference = ktype_reference(profile, budget)
            certify_outcome(
                reference, profile, budget, optimal=False, context="ktype_ref"
            )
        except SchedulingError as error:
            print(f"FAIL {chain.name} ktype_ref: {error}")
            failures += 1
            continue
        for name in HEURISTICS:
            info = get_info(name)
            try:
                outcome = info.func(profile, budget)
                certify_outcome(
                    outcome, profile, budget, optimal=False, context=name
                )
            except SchedulingError as error:
                print(f"FAIL {chain.name} {name}: {error}")
                failures += 1
                continue
            if outcome.period < reference.period - eps:
                print(
                    f"FAIL {chain.name} {name}: period {outcome.period:.6g} "
                    f"beats the eps-optimal reference "
                    f"{reference.period:.6g} (eps={eps:.4g})"
                )
                failures += 1

        # k=2 projection: the reference must track the paper's optimal DP.
        k2_profile = ChainProfile(_two_type_projection(chain))
        k2_eps = search_epsilon(k2_budget)
        ref2 = ktype_reference(k2_profile, k2_budget)
        opt2 = herad(k2_profile, k2_budget)
        if abs(ref2.period - opt2.period) > k2_eps:
            print(
                f"FAIL {chain.name} k2 projection: reference "
                f"{ref2.period:.6g} vs HeRAD {opt2.period:.6g}"
            )
            failures += 1

    if failures:
        print(f"[ktype-smoke] {failures} failure(s)")
        return 1
    print("[ktype-smoke] OK: reference certified, heuristics bounded, k2 agrees")
    return 0


if __name__ == "__main__":
    sys.exit(main())
