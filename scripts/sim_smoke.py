#!/usr/bin/env python
"""Online-simulation smoke: 10k events, invariants held, deterministic, fast.

Drives the discrete-event simulator (``repro.sim``) through a 10 000-event
bursty trace twice and a certified failure storm once, asserting:

* zero scheduleless intervals and zero overcommit events everywhere;
* the two bursty runs are bitwise identical (records and counters);
* the whole smoke completes within the budget (default 60 s) — the
  regression guard for rescheduling-path performance.

Any violation exits non-zero (CI ``sim-smoke`` job).

Usage::

    PYTHONPATH=src python scripts/sim_smoke.py [--events 10000] [--budget 60]
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.clock import monotonic
from repro.sim import SimConfig, bursty_trace, failure_storm_trace, simulate


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--budget", type=float, default=60.0, help="wall-clock budget, seconds"
    )
    args = parser.parse_args(argv)

    start = monotonic()
    failures = 0

    trace = bursty_trace(args.events, seed=args.seed)
    first = simulate(trace)
    second = simulate(trace)
    print(
        f"[bursty] {first.num_events} events, "
        f"scheduleless={first.scheduleless_intervals} "
        f"overcommit={first.overcommit_events}"
    )
    if first.scheduleless_intervals or first.overcommit_events:
        print("FAIL: bursty run violated a scheduling invariant")
        failures += 1
    if (
        first.records != second.records
        or first.metrics.counters != second.metrics.counters
    ):
        print("FAIL: two identical bursty runs were not bitwise identical")
        failures += 1

    storm = simulate(failure_storm_trace(seed=args.seed), SimConfig(certify=True))
    print(
        f"[storm] {storm.num_events} events (certified), "
        f"scheduleless={storm.scheduleless_intervals} "
        f"overcommit={storm.overcommit_events}"
    )
    if storm.scheduleless_intervals or storm.overcommit_events:
        print("FAIL: storm run violated a scheduling invariant")
        failures += 1

    elapsed = monotonic() - start
    print(f"[wall] {elapsed:.1f}s (budget {args.budget:.0f}s)")
    if elapsed > args.budget:
        print(f"FAIL: smoke took {elapsed:.1f}s, budget is {args.budget:.0f}s")
        failures += 1
    if failures:
        print(f"sim smoke FAILED ({failures} check(s))")
        return 1
    print("sim smoke OK: invariants held, runs bitwise identical, under budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
