#!/usr/bin/env python
"""Project-lint smoke: seeded violations fire exactly where planted.

Runs the REP201-REP206 project analyzer over the two fixture corpora under
``tests/lint/project_fixtures/``:

1. ``proj_bad`` seeds exactly one deliberate violation per rule (plus the
   incidental ambient read that accompanies the seeded worker write); the
   analyzer must report precisely those ``(rule, file, line)`` sites —
   nothing missing (a false negative) and nothing extra (a false positive).
2. ``proj_clean`` is the behaviorally-equivalent twin written with the
   blessed patterns (locks held, frozen payloads, sanctioned clock wrapper);
   the analyzer must stay silent on it.

Any drift is printed as a missing/unexpected diff and exits non-zero, so CI
can gate rule precision the same way ``fault_smoke.py`` gates recovery
parity.

Usage::

    PYTHONPATH=src python scripts/lint_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.lint import lint_project

FIXTURES = Path(__file__).resolve().parent.parent / "tests" / "lint" / "project_fixtures"

#: The exact seeded-violation map: one row per planted defect.
EXPECTED_BAD = {
    ("REP201", "repro/core/solvers.py", 17),  # worker writes module global
    ("REP202", "repro/engine/cache.py", 16),  # lock-free read of guarded attr
    ("REP203", "repro/engine/dispatch.py", 22),  # live cache inside WorkUnit
    ("REP203", "repro/engine/shmem.py", 22),  # live SharedMemory handle inside WorkUnit
    ("REP204", "repro/core/uses_engine.py", 3),  # core imports engine (upward)
    ("REP204", "repro/lint/helper.py", 3),  # lint must stay stdlib-only
    ("REP205", "repro/core/solvers.py", 15),  # wall clock in strategy path
    ("REP205", "repro/core/solvers.py", 16),  # ambient mutable read
    ("REP205", "repro/core/solvers.py", 17),  # read half of the seeded write
    ("REP206", "repro/obs/constants.py", 3),  # exported-but-unreferenced name
}


def _sites(report) -> set[tuple[str, str, int]]:
    return {(f.rule_id, f.path, f.line) for f in report.findings}


def _describe(sites: set[tuple[str, str, int]]) -> str:
    return "\n".join(
        f"    {rule} {path}:{line}" for rule, path, line in sorted(sites)
    )


def main() -> int:
    failures = 0

    bad = lint_project(FIXTURES / "proj_bad" / "repro", allowlist=())
    got = _sites(bad)
    missing = EXPECTED_BAD - got
    unexpected = got - EXPECTED_BAD
    if missing:
        failures += 1
        print(f"seeded violations NOT detected ({len(missing)}):")
        print(_describe(missing))
    if unexpected:
        failures += 1
        print(f"unseeded findings reported ({len(unexpected)}):")
        print(_describe(unexpected))
    if not missing and not unexpected:
        print(
            f"proj_bad: all {len(EXPECTED_BAD)} seeded violations detected, "
            "no extras"
        )

    clean = lint_project(FIXTURES / "proj_clean" / "repro", allowlist=())
    if clean.findings:
        failures += 1
        print(f"proj_clean is not silent ({len(clean.findings)}):")
        print(_describe(_sites(clean)))
    else:
        print(f"proj_clean: silent across {clean.files_checked} files")

    if failures:
        print(f"lint smoke FAILED ({failures} check(s))")
        return 1
    print("lint smoke OK: every rule fires exactly where seeded")
    return 0


if __name__ == "__main__":
    sys.exit(main())
