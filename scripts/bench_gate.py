#!/usr/bin/env python
"""CI perf gate: run the bench trajectory, judge it, self-test the judge.

Three steps, any failure exits non-zero:

1. Run ``scripts/bench_trajectory.py`` (in-process) to produce a fresh
   ``BENCH_engine.json`` — its own engine-vs-serial parity checks apply.
2. Compare the fresh report against the committed baseline under
   ``benchmarks/tolerances.json`` (the same evaluation as
   ``repro bench compare``); any regression fails the gate.
3. Sensitivity self-test: seed a synthetic 2x slowdown into the fresh
   report (:func:`repro.bench.gate.seeded_slowdown`) and verify the gate
   *rejects* it.  A perf gate that cannot see a 2x regression is
   decorative, and this catches tolerance files loosened into vacuity.

Usage::

    PYTHONPATH=src python scripts/bench_gate.py [--chains 40] [--jobs 2]
        [--baseline benchmarks/baseline.json]
        [--tolerances benchmarks/tolerances.json] [--out PATH]

``--jobs`` defaults to 2 (not all cores) because the committed baseline
pins ``speedup_vs_serial.process_jobs2``; keep the two in sync when
refreshing the baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import bench_trajectory  # noqa: E402

from repro.bench import (  # noqa: E402
    evaluate,
    load_report,
    load_tolerances,
    render_results,
    seeded_slowdown,
)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chains", type=int, default=40)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--baseline", type=Path, default=REPO_ROOT / "benchmarks" / "baseline.json"
    )
    parser.add_argument(
        "--tolerances",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "tolerances.json",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_engine.json"
    )
    args = parser.parse_args(argv)

    code = bench_trajectory.main(
        [
            "--chains", str(args.chains),
            "--jobs", str(args.jobs),
            "--out", str(args.out),
        ]
    )
    if code != 0:
        print("bench gate: trajectory itself failed", file=sys.stderr)
        return code

    checks = load_tolerances(args.tolerances)
    fresh = load_report(args.out)
    results = evaluate(load_report(args.baseline), fresh, checks)
    print(render_results(results))
    if any(not result.passed for result in results):
        print("bench gate: regression against baseline", file=sys.stderr)
        return 1

    seeded = evaluate(fresh, seeded_slowdown(fresh), checks)
    if all(result.passed for result in seeded):
        print(
            "bench gate: sensitivity self-test failed — a seeded 2x slowdown "
            "passed every check; tolerances are too loose",
            file=sys.stderr,
        )
        print(render_results(seeded))
        return 1
    caught = sum(1 for result in seeded if not result.passed)
    print(f"sensitivity self-test: seeded 2x slowdown rejected ({caught} checks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
