#!/usr/bin/env python
"""Observability smoke: trace a campaign, validate the trace, bound overhead.

Runs a small Table I-style campaign three ways:

1. untraced process-tier baseline (the shipped default: obs fully off);
2. the identical campaign with tracing + metrics enabled, written out as
   Chrome trace-event JSON and re-validated from disk
   (:func:`repro.obs.validate_chrome_trace`: matched B/E pairs, per-thread
   timestamp monotonicity, required fields), plus a collapsed-stack
   flamegraph re-validated from disk (:func:`repro.obs.validate_flamegraph`:
   line grammar, stack roots match span roots, >= 95 % of traced wall-clock
   attributed to leaf frames);
3. a micro-benchmark of the disabled hook path (``counter_add`` with no
   active context), scaled by the number of hook events the campaign
   actually fired, to bound the no-op overhead below 2 % of the untraced
   wall time.

The traced arrays must be **bitwise identical** to the untraced baseline,
the root ``campaign`` span must cover >= 95 % of the measured wall time,
and any failed check exits non-zero (CI ``trace-smoke`` job).

Usage::

    PYTHONPATH=src python scripts/trace_smoke.py [--chains 24] [--jobs 2]
        [--out trace_smoke.json] [--flamegraph trace_smoke.folded]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.registry import PAPER_ORDER
from repro.core.types import Resources
from repro.engine import CampaignEngine
from repro.obs import (
    Observability,
    ObsConfig,
    counter_add,
    monotonic,
    validate_chrome_trace,
    validate_flamegraph,
    write_chrome_trace,
    write_flamegraph,
)
from repro.workloads.synthetic import GeneratorConfig, chain_batch

#: Hook-call budget for the disabled-path micro-benchmark.
_NULL_CALLS = 200_000


def _null_hook_cost_s() -> float:
    """Per-call cost of ``counter_add`` with observability disabled."""
    start = monotonic()
    for _ in range(_NULL_CALLS):
        counter_add("smoke.null")
    return (monotonic() - start) / _NULL_CALLS


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chains", type=int, default=24)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=Path("trace_smoke.json"))
    parser.add_argument(
        "--flamegraph", type=Path, default=Path("trace_smoke.folded")
    )
    args = parser.parse_args(argv)

    config = GeneratorConfig(num_tasks=12, stateless_ratio=0.5)
    chains = list(chain_batch(args.chains, config, seed=args.seed))
    resources = Resources(3, 3)
    strategies = tuple(PAPER_ORDER)

    print(
        f"[untraced] process tier, jobs={args.jobs}, {args.chains} chains x "
        f"{len(strategies)} strategies"
    )
    plain = CampaignEngine(jobs=args.jobs, backend="process", memo=False)
    start = monotonic()
    baseline = plain.solve_instances(chains, resources, strategies)
    untraced_s = monotonic() - start
    print(f"  wall {untraced_s:.3f}s")

    obs = Observability(ObsConfig(trace=True, metrics=True))
    traced_engine = CampaignEngine(
        jobs=args.jobs, backend="process", memo=False, obs=obs
    )
    print("[traced]   same campaign, spans + metrics on")
    start = monotonic()
    traced = traced_engine.solve_instances(chains, resources, strategies)
    traced_s = monotonic() - start
    print(f"  wall {traced_s:.3f}s")

    spans = obs.spans()
    snapshot = obs.metrics.snapshot()
    write_chrome_trace(args.out, spans, snapshot)
    print(f"  wrote {args.out} ({len(spans)} spans)")

    failures = 0

    # 1. The exported document must be structurally valid Chrome trace JSON.
    document = json.loads(args.out.read_text(encoding="utf-8"))
    errors = validate_chrome_trace(document)
    for error in errors:
        print(f"FAIL: trace: {error}")
        failures += 1

    # 1b. The collapsed-stack flamegraph must survive its structural oracle
    # when re-read from disk: line grammar, stack roots drawn from actual
    # root spans, and >= 95% of traced wall-clock attributed to leaf frames.
    stacks = write_flamegraph(args.flamegraph, spans)
    print(f"  wrote {args.flamegraph} ({stacks} stacks)")
    flame_lines = args.flamegraph.read_text(encoding="utf-8").splitlines()
    for error in validate_flamegraph(flame_lines, spans):
        print(f"FAIL: flamegraph: {error}")
        failures += 1

    # 2. The expected phases must be present.
    names = {span.name for span in spans}
    for expected in ("campaign", "unit", "solve"):
        if expected not in names:
            print(f"FAIL: no {expected!r} span in the trace")
            failures += 1
    counters = dict(snapshot.counters)
    expected_solves = len(chains) * len(strategies)
    if counters.get("solve.count") != expected_solves:
        print(
            f"FAIL: solve.count={counters.get('solve.count')}, "
            f"expected {expected_solves}"
        )
        failures += 1

    # 3. The root campaign span must cover (almost) the whole wall time.
    roots = [span for span in spans if span.name == "campaign"]
    if len(roots) != 1:
        print(f"FAIL: expected one campaign root span, got {len(roots)}")
        failures += 1
    else:
        coverage = roots[0].duration / traced_s
        print(f"  root span covers {coverage:.1%} of the traced wall time")
        if coverage < 0.95:
            print(f"FAIL: root span coverage {coverage:.1%} < 95%")
            failures += 1

    # 4. Tracing must not change a single bit of the results.
    for name in strategies:
        for column in ("periods", "big_used", "little_used"):
            a = getattr(baseline[name], column)
            b = getattr(traced[name], column)
            if not np.array_equal(a, b):
                print(f"FAIL: {name}.{column} differs between traced/untraced")
                failures += 1

    # 5. The disabled hook path must be noise: per-call null-hook cost times
    # the number of hook events this campaign fired, bounded at 2% of the
    # untraced wall.  (A direct wall-vs-wall comparison would drown in
    # scheduler jitter at this campaign size; the model is stable.)
    per_call = _null_hook_cost_s()
    hook_events = int(
        2 * counters.get("binary_search.calls", 0.0)
        + 2 * counters.get("herad.calls", 0.0)
        + counters.get("packing.compute_stage_calls", 0.0)
    )
    overhead = per_call * hook_events
    fraction = overhead / untraced_s if untraced_s > 0 else 0.0
    print(
        f"  no-op hook overhead: {hook_events} events x {per_call * 1e9:.0f}ns "
        f"= {overhead * 1e3:.2f}ms ({fraction:.2%} of untraced wall)"
    )
    if fraction >= 0.02:
        print(f"FAIL: no-op hook overhead {fraction:.2%} >= 2%")
        failures += 1

    if failures:
        print(f"trace smoke FAILED ({failures} check(s))")
        return 1
    print("trace smoke OK: valid trace, bitwise parity, no-op overhead bounded")
    return 0


if __name__ == "__main__":
    sys.exit(main())
