#!/usr/bin/env python
"""Scaling smoke: shared-memory process tier — parity, leaks, speedup.

Three phases, any failure exits non-zero (CI ``scaling-smoke`` job):

1. **Bitwise parity** — a Table I-style campaign solved serially, at
   ``--jobs`` on the python kernel, and at ``--jobs`` on the batch kernel;
   all three arrays must be identical to the bit.  This runs everywhere,
   including pinned single-core runners: parity is hardware-independent.
2. **Leak check** — every shared-memory plane the campaigns allocated must
   be unlinked afterwards (attaching to its recorded name must fail), and a
   fault-injected worker crash mid-campaign must not change that.
3. **Speedup** — only when the runner reports at least 2 usable cores
   (``os.sched_getaffinity``): the process tier must reach
   ``--min-efficiency`` x jobs x serial throughput.  On fewer cores the
   phase is skipped loudly — a single-core speedup number is scheduler
   noise, not evidence.

Usage::

    PYTHONPATH=src python scripts/scaling_smoke.py [--chains 40] [--jobs 4]
        [--min-efficiency 0.8]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

import numpy as np

from repro.core.chain_stats import ChainProfile
from repro.core.registry import PAPER_ORDER
from repro.core.types import Resources
from repro.engine import (
    CampaignEngine,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
)
from repro.engine.shm import ResultPlanes
from repro.workloads.synthetic import GeneratorConfig, chain_batch

BUDGET = Resources(10, 10)
_FAST = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _usable_cores() -> int:
    getter = getattr(os, "sched_getaffinity", None)
    return len(getter(0)) if getter is not None else (os.cpu_count() or 1)


def _arrays_match(a, b) -> bool:
    return set(a) == set(b) and all(
        np.array_equal(a[n].periods, b[n].periods)
        and np.array_equal(a[n].big_used, b[n].big_used)
        and np.array_equal(a[n].little_used, b[n].little_used)
        for n in a
    )


class _PlaneRecorder:
    """Wrap ResultPlanes.allocate to record every descriptor handed out."""

    def __init__(self):
        self.descriptors = []
        self._original = ResultPlanes.allocate.__func__

    def __enter__(self):
        recorder = self

        def recording(cls, strategies, chains, ktype):
            planes = recorder._original(cls, strategies, chains, ktype)
            if planes is not None:
                recorder.descriptors.append(planes.descriptor)
            return planes

        ResultPlanes.allocate = classmethod(recording)
        return self

    def __exit__(self, *exc):
        ResultPlanes.allocate = classmethod(self._original)
        return False

    def leaked(self):
        alive = []
        for descriptor in self.descriptors:
            try:
                view = descriptor.open()
            except FileNotFoundError:
                continue
            view.close()
            alive.append(descriptor.periods_name)
        return alive


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chains", type=int, default=40)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--min-efficiency", type=float, default=0.8,
                        help="required speedup as a fraction of --jobs "
                        "(only asserted with >= 2 usable cores)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    config = GeneratorConfig(num_tasks=20, stateless_ratio=0.5)
    chains = list(chain_batch(args.chains, config, seed=args.seed))
    cores = _usable_cores()
    failures = 0
    print(
        f"scaling smoke: {len(chains)} chains x {len(PAPER_ORDER)} "
        f"strategies, jobs={args.jobs}, usable cores={cores}"
    )

    with _PlaneRecorder() as recorder:
        serial_engine = CampaignEngine(jobs=1, backend="serial", memo=False)
        start = time.perf_counter()
        serial = serial_engine.solve_instances(chains, BUDGET, PAPER_ORDER)
        serial_s = time.perf_counter() - start

        process_engine = CampaignEngine(
            jobs=args.jobs, backend="process", memo=False
        )
        start = time.perf_counter()
        parallel = process_engine.solve_instances(chains, BUDGET, PAPER_ORDER)
        parallel_s = time.perf_counter() - start

        batch = CampaignEngine(
            jobs=args.jobs, backend="process", memo=False, kernel="batch"
        ).solve_instances(chains, BUDGET, PAPER_ORDER)

        if _arrays_match(serial, parallel) and _arrays_match(serial, batch):
            print(
                f"  parity: serial vs jobs={args.jobs} (python, batch) "
                "bitwise identical"
            )
        else:
            print("  parity: MISMATCH across tiers", file=sys.stderr)
            failures += 1

        # Fault-injected worker crash: recovery must not leak a segment.
        with tempfile.TemporaryDirectory() as state_dir:
            plan = FaultPlan(
                specs=(
                    FaultSpec(
                        kind="crash",
                        fingerprint=ChainProfile(chains[3]).fingerprint,
                        tiers=("process",),
                        times=1,
                    ),
                ),
                state_dir=state_dir,
            )
            crashed = CampaignEngine(
                jobs=args.jobs, backend="process", memo=False,
                resilience=ResilienceConfig(retry=_FAST), faults=plan,
            ).solve_instances(chains, BUDGET, ("fertac",))
        reference = {"fertac": serial["fertac"]}
        if _arrays_match(reference, crashed):
            print("  crash recovery: bitwise identical")
        else:
            print("  crash recovery: MISMATCH", file=sys.stderr)
            failures += 1

    if not recorder.descriptors:
        print("  leak check: no planes allocated", file=sys.stderr)
        failures += 1
    leaked = recorder.leaked()
    if leaked:
        print(f"  leak check: segments still linked: {leaked}", file=sys.stderr)
        failures += 1
    else:
        print(
            f"  leak check: all {len(recorder.descriptors)} plane "
            "allocations unlinked"
        )

    if cores >= 2:
        speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
        wanted = args.min_efficiency * min(args.jobs, cores)
        verdict = "ok" if speedup >= wanted else "FAIL"
        print(
            f"  speedup: x{speedup:.2f} at jobs={args.jobs} on {cores} "
            f"cores (need >= x{wanted:.2f}) {verdict}"
        )
        if speedup < wanted:
            failures += 1
    else:
        print(
            f"  speedup: skipped ({cores} usable core(s); scaling "
            "assertions need >= 2)"
        )

    if failures:
        print(f"scaling smoke: {failures} failure(s)", file=sys.stderr)
        return 1
    print("scaling smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
