"""Thin shim for environments without the `wheel` package (offline PEP 517
editable installs need bdist_wheel); `pip install -e . --no-use-pep517`
falls back to this."""

from setuptools import setup

setup()
